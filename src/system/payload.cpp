#include "system/payload.h"

#include <algorithm>

#include "common/log.h"

namespace vscrub {

Payload::Payload(const PlacedDesign& design, PayloadOptions options,
                 std::unordered_set<u64> sensitive_bits)
    : design_(&design),
      options_(std::move(options)),
      sensitive_bits_(std::move(sensitive_bits)),
      flash_(design.bitstream, options_.flash_faults),
      codebook_(design.bitstream),
      rng_(options_.seed) {
  validate_scrub_options(options_.scrub);
  // Mask dynamic frames in the codebook exactly as the scrubber does.
  if (options_.scrub.mask_dynamic_frames) {
    const ConfigSpace& space = *design_->space;
    for (const LutSiteRef& site : design_->dynamic_lut_sites) {
      const int slice = site.lut / kLutsPerSlice;
      for (int j = 0; j < kLutTruthBits; ++j) {
        codebook_.mask_frame(space.global_frame_index(FrameAddress{
            ColumnKind::kClb, site.tile.col,
            static_cast<u16>(slice * kLutTruthBits + j)}));
      }
    }
  }
  for (const HalfLatchUse& use : design_->halflatch_uses) {
    if (use.critical) {
      critical_latches_.insert(
          static_cast<u64>(design_->space->geometry().tile_index(use.tile)) *
              kImuxPins +
          use.pin);
    }
  }
  const int n = options_.boards * options_.fpgas_per_board;
  devices_.resize(static_cast<std::size_t>(n));
  for (auto& dev : devices_) {
    dev.sim = std::make_unique<FabricSim>(design.space);
    dev.sim->full_configure(design.bitstream);
  }
}

MissionReport Payload::run_mission(SimTime duration) {
  const ConfigSpace& space = *design_->space;
  const DeviceGeometry& geom = space.geometry();
  MissionReport report;
  report.duration = duration;
  report.devices = static_cast<int>(devices_.size());

  const ScrubPolicy& policy =
      options_.scrub.policy ? *options_.scrub.policy : *default_scrub_policy();
  const bool blind = policy.blind();
  const bool golden_ecc = policy.golden_ecc();
  const bool interleaved = policy.intermodular();
  const u32 period = std::max<u32>(1, policy.schedule_period());
  const int fpb = options_.fpgas_per_board;
  report.scrub_policy = policy.name();

  // Frame sensitivity for ranking policies: explicit options win, otherwise
  // mined from this payload's own sensitivity map (sum per frame, so the
  // unordered-set iteration order cannot matter).
  std::vector<u32> mined;
  if (options_.scrub.frame_sensitivity.empty()) {
    mined = mine_frame_sensitivity(space, sensitive_bits_);
  }
  const std::vector<u32>& sens = options_.scrub.frame_sensitivity.empty()
                                     ? mined
                                     : options_.scrub.frame_sensitivity;

  // Compile the policy's pass plans into the board's visit timetable. The
  // fault manager runs its modules' passes back to back (or interleaved,
  // for intermodular policies); pass p of the schedule occupies one board
  // cycle, and the whole schedule repeats every super-cycle. Visits within
  // a pass occupy uniform slots, exactly like the fixed-rotation model this
  // generalizes: for the default full-scan policy the super-cycle IS the
  // legacy board cycle and every phase below reproduces it bit-for-bit.
  const SelectMapPort port(design_->space.get(), options_.scrub.timing);
  struct VisitSlot {
    double start_s = 0.0;  ///< start of this pass's board cycle in the super
    double cycle_s = 0.0;  ///< duration of that board cycle
    u32 pos = 0;           ///< slot within the pass
    u32 len = 0;           ///< visits in the pass
  };
  std::vector<std::vector<VisitSlot>> visit_slots(space.frame_count());
  SimTime super_cycle;
  u64 scheduled_bytes_per_device = 0;
  u64 visits_per_super = 0;
  u64 unmasked_visits_per_super = 0;
  {
    std::vector<std::vector<u32>> pass_visits(period);
    std::vector<SimTime> pass_cost(period);
    std::vector<u32> plan;
    for (u32 p = 0; p < period; ++p) {
      ScrubPolicyContext ctx;
      ctx.frame_count = space.frame_count();
      ctx.module_count = static_cast<u32>(fpb);
      ctx.pass_index = p;
      ctx.frame_sensitivity = sens.empty() ? nullptr : &sens;
      policy.plan_pass(ctx, plan);
      for (const u32 gf : plan) {
        const FrameOp op = policy.frame_op(ctx, gf);
        if (op == FrameOp::kSkip) continue;
        // Blind writes never touch masked (live-state) frames.
        if (op == FrameOp::kBlindWrite && codebook_.is_masked(gf)) continue;
        pass_visits[p].push_back(gf);
        pass_cost[p] += port.frame_cost(space.frame_of_global(gf));
      }
    }
    SimTime start;
    for (u32 p = 0; p < period; ++p) {
      const SimTime cycle = pass_cost[p] * static_cast<i64>(fpb);
      const u32 len = static_cast<u32>(pass_visits[p].size());
      for (u32 pos = 0; pos < len; ++pos) {
        const u32 gf = pass_visits[p][pos];
        visit_slots[gf].push_back({start.sec(), cycle.sec(), pos, len});
        scheduled_bytes_per_device +=
            (space.frame_bits(space.frame_of_global(gf).kind) + 7) / 8;
        ++visits_per_super;
        if (!codebook_.is_masked(gf)) ++unmasked_visits_per_super;
      }
      start += cycle;
    }
    super_cycle = start;
  }
  const double super_s = super_cycle.sec();
  report.scrub_cycle_per_board =
      period == 1 ? super_cycle : SimTime::seconds(super_s / period);

  const double per_device_rate_s =
      options_.environment.upset_rate_per_bit_s *
      static_cast<double>(space.total_bits()) /
      (1.0 - options_.hidden_state_fraction);
  report.predicted_upsets_per_hour =
      options_.environment.system_upsets_per_hour(space.total_bits(),
                                                  report.devices) /
      (1.0 - options_.hidden_state_fraction);

  // Next visit time of (device, frame): the earliest of the frame's slots,
  // phased by this device's module position within the board cycle.
  auto next_visit = [&](std::size_t dev, u32 gf, SimTime now) -> SimTime {
    const int in_board = static_cast<int>(dev) % fpb;
    const double now_s = now.sec();
    double best_s = -1.0;
    for (const VisitSlot& s : visit_slots[gf]) {
      double frac;
      if (interleaved) {
        // Intermodular staggering: the manager rotates across its modules
        // after every frame instead of finishing a device first.
        frac = (static_cast<double>(s.pos) * static_cast<double>(fpb) +
                static_cast<double>(in_board)) /
               (static_cast<double>(s.len) * static_cast<double>(fpb));
      } else {
        frac = (static_cast<double>(in_board) +
                static_cast<double>(s.pos) / static_cast<double>(s.len)) /
               static_cast<double>(fpb);
      }
      const double phase = s.start_s + frac * s.cycle_s;
      const double k = std::ceil((now_s - phase) / super_s);
      const double t = phase + std::max(0.0, k) * super_s;
      if (best_s < 0.0 || t < best_s) best_s = t;
    }
    return SimTime::seconds(best_s);
  };

  double latency_sum_ms = 0.0;
  u64 repair_write_bytes = 0;

  // Event queue built on the fly: march through upset arrivals; between
  // them, resolve pending detections.
  SimTime now;
  SimTime next_full_reconfig = options_.full_reconfig_interval.ps() > 0
                                   ? options_.full_reconfig_interval
                                   : SimTime::hours(1e9);

  auto resolve_until = [&](SimTime horizon) {
    // Repeatedly find the earliest pending scrub visit before `horizon`.
    for (;;) {
      SimTime best = horizon;
      std::size_t best_dev = devices_.size();
      std::size_t best_idx = 0;
      for (std::size_t d = 0; d < devices_.size(); ++d) {
        for (std::size_t i = 0; i < devices_[d].outstanding.size(); ++i) {
          const auto& o = devices_[d].outstanding[i];
          if (!o.detectable) continue;
          const u32 gf = space.global_frame_index(
              space.address_of_linear(o.linear_bit).frame);
          const SimTime visit = next_visit(d, gf, o.at);
          if (visit < best) {
            best = visit;
            best_dev = d;
            best_idx = i;
          }
        }
      }
      if (best_dev == devices_.size()) break;
      // Execute the visit.
      Device& dev = devices_[best_dev];
      auto o = dev.outstanding[best_idx];
      const BitAddress addr = space.address_of_linear(o.linear_bit);
      const u32 gf = space.global_frame_index(addr.frame);
      double latency_ms = 0.0;
      if (!blind) {
        // Detection: real readback + CRC check.
        const BitVector data = dev.sim->read_frame(addr.frame, true);
        VSCRUB_CHECK(!codebook_.check(gf, data),
                     "mission: CRC failed to flag a detectable upset");
        ++dev.report.detected;
        ++report.detected;
        latency_ms = (best - o.at).ms() +
                     options_.scrub.error_handling_overhead.ms();
        latency_sum_ms += latency_ms;
        report.detection_latency_ms.push_back(latency_ms);
        report.max_detection_latency_ms =
            std::max(report.max_detection_latency_ms, latency_ms);
      }
      FlashStore::FetchStatus fetch;
      BitVector golden = flash_.fetch_frame(gf, &fetch);
      if (golden_ecc && (fetch.uncorrectable > 0 || fetch.corrected > 0)) {
        // golden_ecc tier: repair from the SECDED-protected second golden
        // copy on any flash ECC event; a double-bit flash word no longer
        // forces the full-reconfiguration escalation below.
        golden = design_->bitstream.frame(gf);
        ++report.ecc_fallback_repairs;
        if (options_.trace) {
          options_.trace->event("ecc_fallback_repair", best)
              .f("dev", static_cast<u64>(best_dev))
              .f("frame", gf);
        }
      } else if (fetch.uncorrectable > 0) {
        // The golden frame came back with a double-bit ECC word: never
        // partially reconfigure with corrupt data. Escalate to a full
        // reconfiguration of this device from the ground image, which also
        // clears everything else outstanding on it.
        ++report.flash_escalations;
        ++dev.report.resets;
        ++report.resets;
        if (options_.trace) {
          options_.trace->event("flash_escalation", best)
              .f("dev", static_cast<u64>(best_dev))
              .f("frame", gf);
        }
        for (const auto& oo : dev.outstanding) {
          if (oo.functional) dev.report.corrupted_time += best - oo.at;
        }
        dev.outstanding.clear();
        dev.sim->full_configure(design_->bitstream);
        continue;
      }
      dev.sim->write_frame(addr.frame, golden);
      ++dev.report.repaired;
      ++report.repaired;
      if (!blind) {
        // Interrupt-driven repairs are extra port traffic; blind rewrites
        // are already counted in the scheduled bandwidth.
        repair_write_bytes += (space.frame_bits(addr.frame.kind) + 7) / 8;
        if (options_.scrub.reset_after_repair) {
          dev.sim->reset();
          ++dev.report.resets;
          ++report.resets;
        }
        if (options_.trace) {
          options_.trace->event("mission_repair", best)
              .f("dev", static_cast<u64>(best_dev))
              .f("frame", gf)
              .f("latency_ms", latency_ms);
        }
      } else if (options_.trace) {
        // A blind rewrite silently absorbs the upset: no interrupt, no
        // detection record, no reset.
        options_.trace->event("mission_blind_scrub", best)
            .f("dev", static_cast<u64>(best_dev))
            .f("frame", gf);
      }
      if (o.functional) {
        dev.report.corrupted_time += best - o.at;
      }
      dev.outstanding.erase(dev.outstanding.begin() +
                            static_cast<std::ptrdiff_t>(best_idx));
    }
  };

  auto full_reconfig_all = [&](SimTime when) {
    for (auto& dev : devices_) {
      // Account functional corruption up to the reconfiguration.
      for (const auto& o : dev.outstanding) {
        if (o.functional) dev.report.corrupted_time += when - o.at;
      }
      dev.outstanding.clear();
      dev.sim->full_configure(design_->bitstream);
    }
    ++report.full_reconfigs;
    if (options_.trace) options_.trace->event("full_reconfig", when);
  };

  while (now < duration) {
    const double dt_s = rng_.exponential(
        per_device_rate_s * static_cast<double>(devices_.size()));
    SimTime next_upset = now + SimTime::seconds(dt_s);
    while (next_full_reconfig < next_upset && next_full_reconfig < duration) {
      resolve_until(next_full_reconfig);
      full_reconfig_all(next_full_reconfig);
      next_full_reconfig += options_.full_reconfig_interval;
    }
    if (next_upset >= duration) {
      resolve_until(duration);
      now = duration;
      break;
    }
    now = next_upset;
    resolve_until(now);

    // Place the upset.
    const std::size_t d = rng_.uniform(devices_.size());
    Device& dev = devices_[d];
    ++dev.report.upsets;
    ++report.upsets_total;
    Device::Outstanding o;
    o.at = now;
    if (rng_.uniform01() < options_.hidden_state_fraction) {
      o.hidden = true;
      ++dev.report.hidden_upsets;
      ++report.hidden_upsets;
      const u32 t = static_cast<u32>(rng_.uniform(geom.tile_count()));
      o.latch_tile = geom.tile_coord(t);
      o.latch_pin = static_cast<u8>(rng_.uniform(kImuxPins));
      dev.sim->flip_halflatch(o.latch_tile, o.latch_pin);
      o.functional = critical_latches_.count(
                         static_cast<u64>(t) * kImuxPins + o.latch_pin) != 0;
      o.detectable = false;  // invisible to readback (§III-C)
    } else {
      o.linear_bit = rng_.uniform(space.total_bits());
      const BitAddress addr = space.address_of_linear(o.linear_bit);
      dev.sim->flip_config_bit(addr);
      o.functional = sensitive_bits_.count(o.linear_bit) != 0;
      const u32 gf = space.global_frame_index(addr.frame);
      // Scrubbable = unmasked and actually on the policy's timetable (for
      // every built-in policy those coincide).
      o.detectable = !codebook_.is_masked(gf) && !visit_slots[gf].empty();
    }
    if (o.functional) ++report.functional_upsets;
    if (options_.trace) {
      options_.trace->event("upset", now)
          .f("dev", static_cast<u64>(d))
          .f("hidden", static_cast<u64>(o.hidden))
          .f("functional", static_cast<u64>(o.functional))
          .f("detectable", static_cast<u64>(o.detectable));
    }
    dev.outstanding.push_back(o);
  }

  // Scrub-link fault events (readback noise, transfer timeouts) never touch
  // device state: the scrubber's re-read confirm filter rejects noise before
  // any repair, and timeouts only cost link time. They are modeled as their
  // own Poisson processes on a stream derived from the mission seed, so the
  // legacy rng stream — and everything simulated above — is untouched.
  if (options_.scrub.link_faults.enabled()) {
    const ScrubLinkFaults& lf = options_.scrub.link_faults;
    const double dev_count = static_cast<double>(devices_.size());
    const double visits_all =
        dev_count * static_cast<double>(visits_per_super) / super_s;
    const double visits_unmasked =
        dev_count * static_cast<double>(unmasked_visits_per_super) / super_s;
    // A noise flip on an in-sync unmasked frame fails its CRC; a timeout can
    // hit any frame's transfer. A blind policy never reads back, so readback
    // noise cannot raise alarms at all.
    const double rate_noise = blind ? 0.0 : visits_unmasked * lf.readback_flip_prob;
    const double rate_timeout = visits_all * lf.transfer_timeout_prob;
    const double rate_total = rate_noise + rate_timeout;
    if (rate_total > 0.0) {
      Rng fault_rng(options_.seed ^ 0x5c2bfa017ULL);
      double t_s = fault_rng.exponential(rate_total);
      while (t_s < duration.sec()) {
        if (fault_rng.uniform01() * rate_total < rate_noise) {
          ++report.false_alarms;
          if (options_.trace) {
            options_.trace->event("scrub_false_alarm", SimTime::seconds(t_s));
          }
        } else {
          // First attempt timed out; retries are fresh Bernoulli draws.
          u32 timeouts = 1;
          while (timeouts <= lf.max_transfer_retries &&
                 fault_rng.bernoulli(lf.transfer_timeout_prob)) {
            ++timeouts;
          }
          report.scrub_transfer_timeouts += timeouts;
          if (timeouts > lf.max_transfer_retries) {
            ++report.scrub_retries_exhausted;
            ++report.scrub_fault_resets;
            ++report.resets;
            if (options_.trace) {
              options_.trace->event("scrub_link_exhausted",
                                    SimTime::seconds(t_s));
            }
          }
        }
        t_s += fault_rng.exponential(rate_total);
      }
    }
  }

  // Mission end: account whatever is still outstanding.
  for (auto& dev : devices_) {
    for (const auto& o : dev.outstanding) {
      if (o.functional) dev.report.corrupted_time += duration - o.at;
      ++dev.report.undetected_outstanding;
    }
  }

  SimTime corrupted_total;
  for (const auto& dev : devices_) corrupted_total += dev.report.corrupted_time;
  report.availability =
      1.0 - corrupted_total.sec() /
                (duration.sec() * static_cast<double>(devices_.size()));
  report.mean_detection_latency_ms =
      report.detected ? latency_sum_ms / static_cast<double>(report.detected)
                      : 0.0;
  report.mttr_ms = report.functional_upsets
                       ? corrupted_total.ms() /
                             static_cast<double>(report.functional_upsets)
                       : 0.0;
  report.scrub_bandwidth_bytes_per_s =
      static_cast<double>(devices_.size()) *
          static_cast<double>(scheduled_bytes_per_device) / super_s +
      static_cast<double>(repair_write_bytes) / duration.sec();
  report.observed_upsets_per_hour =
      static_cast<double>(report.upsets_total) / duration.sec() * 3600.0;
  report.scrub_passes = static_cast<u64>(duration.sec() / super_s *
                                         static_cast<double>(period));
  report.flash_stats = flash_.stats();
  for (const auto& dev : devices_) report.per_device.push_back(dev.report);
  if (options_.metrics != nullptr) {
    fill_mission_metrics(report, *options_.metrics);
  }
  return report;
}

void Payload::fill_mission_metrics(const MissionReport& report,
                                   MetricsRegistry& metrics) {
  metrics.counter("mission_upsets").add(report.upsets_total);
  metrics.counter("mission_detected").add(report.detected);
  metrics.counter("mission_repaired").add(report.repaired);
  metrics.counter("mission_resets").add(report.resets);
  metrics.counter("mission_hidden_upsets").add(report.hidden_upsets);
  metrics.counter("mission_functional_upsets").add(report.functional_upsets);
  metrics.counter("mission_full_reconfigs").add(report.full_reconfigs);
  metrics.counter("mission_false_alarms").add(report.false_alarms);
  metrics.counter("mission_false_repairs").add(report.false_repairs);
  metrics.counter("mission_transfer_timeouts")
      .add(report.scrub_transfer_timeouts);
  metrics.counter("mission_retries_exhausted")
      .add(report.scrub_retries_exhausted);
  metrics.counter("mission_flash_escalations").add(report.flash_escalations);
  metrics.counter("mission_ecc_fallback_repairs")
      .add(report.ecc_fallback_repairs);
  metrics.counter("mission_flash_ecc_corrected").add(report.flash_stats.corrected);
  metrics.set_gauge("mission_availability", report.availability);
  metrics.set_gauge("mission_mttr_ms", report.mttr_ms);
  metrics.set_gauge("mission_scrub_bandwidth_bytes_per_s",
                    report.scrub_bandwidth_bytes_per_s);
  metrics.set_gauge("mission_duration_hours", report.duration.sec() / 3600.0);
  Histogram& lat = metrics.histogram("mission_detection_latency_ms");
  for (const double ms : report.detection_latency_ms) lat.record(ms);
}

}  // namespace vscrub
