// Monte-Carlo fleet runner: N independent seeded missions of the same
// payload (a seed sweep) spread across the thread pool, aggregated into
// availability confidence intervals and detection-latency percentiles.
//
// Missions are fully independent — mission i always runs with seed
// base_seed + i against its own Payload instance — so the result is a pure
// function of (design, options) and is bit-identical for any thread count,
// which the determinism tests assert.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "report/json.h"
#include "system/payload.h"

namespace vscrub {

struct FleetOptions {
  u32 missions = 16;
  /// Mission i runs with PayloadOptions::seed = base_seed + i.
  u64 base_seed = 1;
  SimTime duration = SimTime::hours(24);
  /// Template for every mission; seed and observability sinks are
  /// overwritten per mission.
  PayloadOptions payload;
  /// 0 = hardware concurrency.
  u32 threads = 0;
  /// Keep each mission's JSONL event trace (joined bytes) in the result.
  bool capture_traces = false;
};

struct FleetResult {
  /// Per-mission reports, ordered by mission index (not completion order).
  std::vector<MissionReport> reports;
  /// Per-mission joined JSONL traces when capture_traces is set, else empty.
  std::vector<std::string> traces;
  // Availability across missions: sample mean and 95% confidence-interval
  // half-width (normal approximation; 0 with fewer than 2 missions).
  double availability_mean = 1.0;
  double availability_ci95 = 0.0;
  // Detection latency percentiles over every detection in the fleet.
  double detection_latency_p50_ms = 0.0;
  double detection_latency_p99_ms = 0.0;
  /// Fleet MTTR: total functional-corruption time over total functional
  /// upsets across every mission (0 when no functional upset occurred).
  double mttr_ms = 0.0;
  /// Mean scheduled+repair configuration-port traffic across missions.
  double scrub_bandwidth_bytes_per_s = 0.0;
  // Summed counters over all missions.
  u64 upsets_total = 0;
  u64 detected = 0;
  u64 repaired = 0;
  u64 resets = 0;
  u64 functional_upsets = 0;
  u64 false_alarms = 0;
  u64 false_repairs = 0;
  u64 scrub_transfer_timeouts = 0;
  u64 scrub_retries_exhausted = 0;
  u64 flash_escalations = 0;
  u64 ecc_fallback_repairs = 0;
};

/// Runs the seed sweep across the pool and aggregates. The aggregation is
/// computed from the index-ordered reports, so it is deterministic too.
FleetResult run_fleet(const PlacedDesign& design,
                      const std::unordered_set<u64>& sensitive_bits,
                      const FleetOptions& options);

/// Publishes the aggregate statistics into a metrics registry (fleet_*
/// names) — the payload of BENCH_mission.json.
void fill_fleet_metrics(const FleetResult& result, MetricsRegistry& metrics);

/// The fleet aggregates as a versioned JSON report ("kind": "fleet"),
/// through the shared report/json serializer.
JsonReport fleet_report_json(const FleetResult& result);

/// A mission's filled metrics registry as a versioned JSON report
/// ("kind": "mission"). Pass the registry that PayloadOptions::metrics
/// pointed at during the run.
JsonReport mission_report_json(const MetricsRegistry& metrics);

/// The scrub-policy laboratory: the same seed sweep raced once per policy.
struct PolicyRaceOptions {
  /// Registry names to race, in order. Empty = every built-in policy.
  std::vector<std::string> policies;
  /// Fleet template. Each entry runs this sweep with payload.scrub.policy
  /// replaced by the raced policy; everything else (seeds, duration,
  /// environment) is held identical so the curves are comparable.
  FleetOptions fleet;
};

struct PolicyRaceEntry {
  std::string policy;
  FleetResult fleet;
};

struct PolicyRaceResult {
  std::vector<PolicyRaceEntry> entries;  ///< in PolicyRaceOptions order
};

/// Races each policy over the identical seed sweep. Deterministic for any
/// thread count, like run_fleet. Throws ScrubConfigError on unknown names.
PolicyRaceResult run_policy_race(const PlacedDesign& design,
                                 const std::unordered_set<u64>& sensitive_bits,
                                 const PolicyRaceOptions& options);

/// The race as a versioned JSON report ("kind": "policy_race"): per policy,
/// flattened `<name>_availability_mean/_ci95/_mttr_ms/...` curves — the
/// payload of BENCH_policies.json.
JsonReport policy_race_report_json(const PolicyRaceResult& result);

}  // namespace vscrub
