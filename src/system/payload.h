// The space-based reconfigurable radio payload (paper §II, Figs. 1-3): three
// RCC boards of three XQVR1000-class FPGAs, each board watched by a
// radiation-hardened Actel-class fault manager that cycles through the three
// devices' configuration frames (~180 ms per cycle), an ECC-protected flash
// holding the golden configurations, and a RAD6000-class host that services
// repair interrupts and keeps the state-of-health record.
//
// The mission simulator is event-driven: upsets arrive as a Poisson process
// from the orbit environment; scrub-pass timing is modeled exactly while
// clean passes are skipped analytically (only passes that will detect
// something are executed against the device model, with a real CRC check).
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "common/event_trace.h"
#include "common/metrics.h"
#include "radiation/environment.h"
#include "scrub/flash.h"
#include "scrub/scrubber.h"

namespace vscrub {

struct PayloadOptions {
  int boards = 3;
  int fpgas_per_board = 3;
  OrbitEnvironment environment = OrbitEnvironment::leo_quiet();
  ScrubberOptions scrub;
  /// Fraction of each device's physical upset cross-section in hidden state
  /// (half-latches etc.) — invisible to scrubbing.
  double hidden_state_fraction = 0.0042;
  /// Operational full reconfiguration cadence (restores half-latches); 0
  /// disables.
  SimTime full_reconfig_interval = SimTime::hours(24);
  u64 seed = 4242;
  /// Radiation fault model of the flash array holding the golden image.
  /// A golden fetch that comes back with a double-bit (uncorrectable) word
  /// is never written to the device: the repair escalates to a full
  /// reconfiguration of that device instead.
  FlashFaultModel flash_faults;
  /// Optional observability sinks (may stay null). The mission is a pure
  /// function of (design, options minus these pointers): attaching or
  /// detaching them never changes the MissionReport.
  MetricsRegistry* metrics = nullptr;
  EventTrace* trace = nullptr;
};

struct DeviceReport {
  u64 upsets = 0;
  u64 hidden_upsets = 0;
  u64 detected = 0;
  u64 repaired = 0;
  u64 resets = 0;
  u64 undetected_outstanding = 0;  ///< hidden/masked upsets never scrubbed
  SimTime corrupted_time;  ///< time spent functionally corrupted

  bool operator==(const DeviceReport&) const = default;
};

struct MissionReport {
  SimTime duration;
  int devices = 0;
  u64 upsets_total = 0;
  u64 detected = 0;
  u64 repaired = 0;
  u64 resets = 0;
  u64 hidden_upsets = 0;
  u64 full_reconfigs = 0;
  double mean_detection_latency_ms = 0.0;
  double max_detection_latency_ms = 0.0;
  /// Fraction of device-time free of functional corruption.
  double availability = 1.0;
  /// Observed vs environment-predicted upset rate, for the §I calibration.
  double observed_upsets_per_hour = 0.0;
  double predicted_upsets_per_hour = 0.0;
  SimTime scrub_cycle_per_board;  ///< modeled full cycle over 3 devices
  u64 scrub_passes = 0;           ///< board scrub cycles elapsed
  /// Upsets that corrupted design function (sensitive config bits or
  /// critical half-latches) — the MTTR denominator.
  u64 functional_upsets = 0;
  /// Mean time-to-repair: average duration of functional corruption per
  /// functional upset (scrub repair, escalation, full reconfig, or mission
  /// end, whichever cleared it). The per-policy racing figure of merit.
  double mttr_ms = 0.0;
  /// Mean configuration-port traffic: the policy's scheduled transfer bytes
  /// per super-cycle across all devices, plus executed repair writes.
  double scrub_bandwidth_bytes_per_s = 0.0;
  /// Name of the scrub policy this mission ran under.
  std::string scrub_policy;
  FlashStore::Stats flash_stats;
  // Scrub-path fault accounting (all zero with an ideal link and pristine
  // flash):
  u64 false_alarms = 0;   ///< CRC mismatches rejected as readback noise
  u64 false_repairs = 0;  ///< repairs triggered by noise alone — must stay 0
  u64 scrub_transfer_timeouts = 0;   ///< timed-out transfer attempts
  u64 scrub_retries_exhausted = 0;   ///< transfers abandoned after max retries
  u64 scrub_fault_resets = 0;        ///< resets escalated from link faults
  u64 flash_escalations = 0;  ///< repairs aborted on uncorrectable golden
  /// Repairs served from the SECDED golden shadow after a flash ECC event
  /// (golden_ecc policies only); each double-bit one avoided an escalation.
  u64 ecc_fallback_repairs = 0;
  /// Per-detection latency samples (ms), in detection order; feeds the fleet
  /// percentiles.
  std::vector<double> detection_latency_ms;
  std::vector<DeviceReport> per_device;

  bool operator==(const MissionReport&) const = default;
};

class Payload {
 public:
  /// All devices run the same compiled design (the paper's FPGAs share one
  /// pinout so any configuration loads on any device). `sensitive_bits` is
  /// the SEU simulator's sensitivity map (linear bit indices) used to judge
  /// functional corruption.
  Payload(const PlacedDesign& design, PayloadOptions options,
          std::unordered_set<u64> sensitive_bits);

  MissionReport run_mission(SimTime duration);

  /// Publishes the report's counters and latency distribution into a metrics
  /// registry (mission_* names).
  static void fill_mission_metrics(const MissionReport& report,
                                   MetricsRegistry& metrics);

 private:
  struct Device {
    std::unique_ptr<FabricSim> sim;
    DeviceReport report;
    // Outstanding upsets awaiting detection/repair.
    struct Outstanding {
      u64 linear_bit = 0;
      bool hidden = false;
      TileCoord latch_tile;
      u8 latch_pin = 0;
      SimTime at;
      bool functional = false;  ///< corrupts design function
      bool detectable = false;  ///< visible to frame CRC scrubbing
    };
    std::vector<Outstanding> outstanding;
  };

  const PlacedDesign* design_;
  PayloadOptions options_;
  std::unordered_set<u64> sensitive_bits_;
  std::unordered_set<u64> critical_latches_;  // tile*kImuxPins + pin
  FlashStore flash_;
  CrcCodebook codebook_;
  std::vector<Device> devices_;
  Rng rng_;
};

}  // namespace vscrub
