// The campaign coordinator: the FrameService a `vscrubd --coordinator`
// daemon runs instead of the worker engine. Same VSRP1 wire, same epoll
// transport — different verbs behind the frames:
//
//   kCampaign      -> a *sharded* campaign over the registered worker
//                     fleet (coord/fabric.h), streaming merged
//                     fabric_progress frames and replying with the merged
//                     report (bit-identical to a one-shot run).
//   kStoreLookup / -> the fleet's remote verdict tier, answered inline
//   kStorePublish     against this daemon's process-wide VerdictStore, so
//                     workers reuse each other's verdicts across machines.
//   kPing / kStats / kCancel behave as on a worker.
//
// Worker registration is configuration: the fleet's vscrubd socket paths
// are handed to the constructor (vscrubd --coordinator --worker <sock>...).
// Per-campaign worker health (lost links, leases, reassignment) is the
// fabric's job; the registry here is the roster and its lifetime stats.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "store/verdict_store.h"
#include "svc/service.h"

namespace vscrub {

struct CoordinatorConfig {
  /// This daemon's own Unix socket — advertised to workers as the remote
  /// verdict tier (remote_store_socket), so the coordinator is the hub.
  std::string socket_path;
  /// The registered fleet: vscrubd worker Unix-socket paths.
  std::vector<std::string> workers;
  /// Verdict hub store directory; empty runs the fleet without the remote
  /// reuse tier (store requests then get a typed "no_store" error).
  std::string cache_dir;
  u64 shards_per_worker = 2;
  u64 lease_ms = 10000;
  /// Worker checkpoint/shipping cadence in chunks (0 = worker default).
  u64 checkpoint_every_chunks = 2;
  /// Concurrent sharded campaigns; extras are rejected with kBusy.
  unsigned max_concurrent = 2;

  /// Throws ServiceConfigError on an unusable configuration.
  void validate() const;
};

class CoordinatorService : public FrameService {
 public:
  explicit CoordinatorService(CoordinatorConfig config);
  ~CoordinatorService() override;

  CoordinatorService(const CoordinatorService&) = delete;
  CoordinatorService& operator=(const CoordinatorService&) = delete;

  void handle(const Frame& request, Emit emit, u64 client_id) override;
  void begin_drain() override;
  void wait_drained() override;
  bool idle() const override;
  void cancel_client(u64 client_id) override;
  void cancel_all() override;
  /// "kind": "coordinator_stats" — fleet roster size, campaigns served,
  /// reassignments, verdict-hub store counters.
  JsonReport stats_report() const override;

  const CoordinatorConfig& config() const { return config_; }
  VerdictStore* store() { return store_.get(); }

 private:
  struct LiveCampaign {
    u64 client_id = 0;
    u64 request_id = 0;
    std::shared_ptr<std::atomic<bool>> cancelled;
  };

  void run_fleet_campaign(const Frame& request, Emit emit,
                          std::shared_ptr<std::atomic<bool>> cancelled);
  void finish_campaign(u64 client_id, u64 request_id);
  void reply(const Emit& emit, FrameKind kind, u64 request_id,
             const JsonReport& report) const;
  JsonReport error_report(const std::string& code,
                          const std::string& message) const;

  CoordinatorConfig config_;
  std::unique_ptr<VerdictStore> store_;  ///< null when cache_dir is empty

  mutable std::mutex mutex_;
  std::condition_variable drained_cv_;
  std::vector<LiveCampaign> live_;
  std::vector<std::thread> runners_;
  unsigned running_ = 0;
  std::atomic<bool> draining_{false};

  // Lifetime telemetry, folded in as campaigns finish.
  u64 campaigns_total_ = 0;
  u64 campaigns_failed_ = 0;
  u64 reassignments_total_ = 0;
  u64 resumed_injections_total_ = 0;
  u64 store_lookups_ = 0;
  u64 store_hits_ = 0;
  u64 store_publishes_ = 0;
};

}  // namespace vscrub
