#include "coord/partition.h"

#include <algorithm>

#include "common/log.h"
#include "fabric/config_space.h"
#include "svc/requests.h"

namespace vscrub {

u64 campaign_universe_size(const FlatJson& params) {
  const ConfigSpace space(device_by_name(params.get_string("device",
                                                           "campaign")));
  const u64 total = space.total_bits();
  if (params.get_bool("exhaustive")) return total;
  // Same default and clamp as the served campaign_options_from /
  // build_universe pair: sample 0 (or >= total) means every bit.
  const u64 sample = params.get_u64("sample", 20000);
  if (sample == 0 || sample >= total) return total;
  return sample;
}

std::vector<BitRange> partition_universe(u64 universe, u64 shards) {
  VSCRUB_CHECK(shards > 0, "partition: shard count must be positive");
  std::vector<BitRange> ranges;
  const u64 n = std::min(shards, universe);
  if (n == 0) return ranges;
  ranges.reserve(n);
  const u64 base = universe / n;
  const u64 extra = universe % n;
  u64 begin = 0;
  for (u64 i = 0; i < n; ++i) {
    const u64 size = base + (i < extra ? 1 : 0);
    ranges.push_back(BitRange{begin, begin + size});
    begin += size;
  }
  return ranges;
}

}  // namespace vscrub
