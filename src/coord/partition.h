// Bit-space partitioning for the distributed campaign fabric.
//
// A sharded campaign splits the one-shot run's injection universe — the
// deterministic bit order build_universe produces from (device, sample,
// seed) — into contiguous [begin, end) position ranges. Every worker builds
// the identical universe locally and slices its assigned range out of it, so
// the shards partition the one-shot run exactly: disjoint, covering, and in
// the same per-bit order. That is what makes the merged campaign provably
// bit-identical — counters sum and the order-independent sensitive-set
// digest XORs across ranges to the one-shot digest.
#pragma once

#include <vector>

#include "common/types.h"
#include "svc/protocol.h"

namespace vscrub {

/// One contiguous shard of the injection universe, [begin, end) positions
/// in the campaign's deterministic universe order.
struct BitRange {
  u64 begin = 0;
  u64 end = 0;
  u64 size() const { return end - begin; }
};

/// The number of universe positions the campaign described by `params`
/// (served request parameter names and defaults) will inject: the device's
/// total configuration bits for an exhaustive run, else the sample size
/// clamped to the device. Mirrors build_universe's sizing exactly. Throws
/// Error on an unknown device name.
u64 campaign_universe_size(const FlatJson& params);

/// Splits [0, universe) into at most `shards` contiguous near-equal ranges
/// (the first `universe % shards` ranges are one position larger). Fewer
/// ranges come back when the universe is smaller than the shard count;
/// an empty universe yields no ranges. Throws Error when shards == 0.
std::vector<BitRange> partition_universe(u64 universe, u64 shards);

}  // namespace vscrub
