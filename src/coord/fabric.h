// The campaign fabric: shard one injection campaign across a fleet of
// vscrubd workers with fault-tolerant range reassignment.
//
// Execution model — one driver thread per worker link, pulling ranges off a
// shared queue:
//
//   partition the universe into (workers x shards_per_worker) ranges
//   each driver: pop range -> submit it to its worker (range_begin/
//   range_end + ship_checkpoints + remote_store_socket, and the range's
//   last shipped VSCK blob as resume_checkpoint when it has one) ->
//   stream kProgress (merged, forwarded up) and kCheckpoint (blob kept as
//   the range's restart point) -> fold the range report into the merge.
//
// Fault tolerance is the LLNL-style checkpoint/restart loop, one lease per
// in-flight range: a worker that dies (connection drop) or hangs (no
// progress/checkpoint frame within lease_ms) forfeits its range, which goes
// back on the queue *with its latest shipped checkpoint* — the next worker
// resumes from the blob instead of restarting, and the range report's
// resumed_injections > 0 proves the round trip. Completions are
// first-wins: a zombie attempt finishing after reassignment is counted and
// dropped (its result would be bit-identical anyway). The fabric only
// fails when every worker link is gone while ranges remain, or a range
// keeps failing past its attempt budget.
//
// The merge is exact, not approximate: counters sum, and the sensitive-set
// digest — XOR over order-independent per-bit hashes — folds across
// disjoint ranges to precisely the one-shot campaign's digest. The fabric
// tests assert that equality byte-for-byte, killed workers included.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "coord/partition.h"
#include "report/json.h"

namespace vscrub {

struct FabricOptions {
  /// Worker endpoints (vscrubd Unix-socket paths), one driver each.
  std::vector<std::string> workers;
  /// Campaign parameters, served request names (design, device, sample,
  /// seed, exhaustive, chunk, gang_*, ...). Range and fabric parameters are
  /// added per shard; anything unrecognized is not forwarded.
  FlatJson params;
  /// Ranges per worker. Over-sharding (> 1) is what makes reassignment
  /// cheap: a lost worker forfeits a shard, not 1/Nth of the campaign.
  u64 shards_per_worker = 2;
  /// A range with no progress or checkpoint frame for this long is
  /// declared lost and reassigned from its last checkpoint.
  u64 lease_ms = 10000;
  /// Worker-side checkpoint cadence in chunks (0 = the worker's default);
  /// every save is shipped back as a kCheckpoint frame.
  u64 checkpoint_every_chunks = 0;
  /// When set, workers are told to probe this daemon's verdict store
  /// (kStoreLookup/kStorePublish) behind their local one — normally the
  /// coordinator's own socket, making it the fleet's verdict hub.
  std::string remote_store_socket;
  /// Merged progress snapshots ("fabric_progress" reports), emitted on the
  /// driver/reader threads as worker progress arrives. Must be thread-safe;
  /// may be empty.
  std::function<void(const JsonReport&)> on_progress;
  /// Checked between waits; a set flag cancels outstanding work and makes
  /// run_fabric_campaign return the merged partial report as interrupted.
  const std::atomic<bool>* cancelled = nullptr;
};

struct FabricResult {
  /// The merged campaign report ("kind": "campaign" plus fabric_* fields):
  /// summed counters, XOR-folded sensitive_digest — bit-identical to the
  /// equivalent one-shot run unless `interrupted`.
  JsonReport merged;
  bool interrupted = false;
  u64 ranges = 0;
  u64 workers_lost = 0;       ///< driver links that died for good
  u64 reassignments = 0;      ///< ranges requeued after a lost/hung worker
  u64 duplicate_completions = 0;  ///< zombie results dropped (first-wins)
  u64 resumed_injections = 0;     ///< summed proof of checkpoint restarts
  u64 remote_hits = 0;
  u64 remote_publishes = 0;

  FabricResult() : merged("campaign") {}
};

/// Runs one sharded campaign over the fleet. Blocks until every range
/// completed (or the campaign was cancelled). Throws Error when no worker
/// is reachable, every link dies with ranges outstanding, or a range
/// exhausts its attempt budget on typed worker errors.
FabricResult run_fabric_campaign(const FabricOptions& options);

}  // namespace vscrub
