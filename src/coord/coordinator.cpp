#include "coord/coordinator.h"

#include <utility>

#include "common/log.h"
#include "coord/fabric.h"
#include "svc/config.h"
#include "svc/store_wire.h"

namespace vscrub {

void CoordinatorConfig::validate() const {
  if (socket_path.empty()) {
    throw ServiceConfigError("coordinator: socket_path must be set");
  }
  if (workers.empty()) {
    throw ServiceConfigError(
        "coordinator: at least one --worker socket is required");
  }
  if (shards_per_worker == 0) {
    throw ServiceConfigError(
        "coordinator: shards_per_worker must be positive");
  }
  if (lease_ms == 0) {
    throw ServiceConfigError("coordinator: lease_ms must be positive");
  }
  if (max_concurrent == 0) {
    throw ServiceConfigError("coordinator: max_concurrent must be positive");
  }
}

CoordinatorService::CoordinatorService(CoordinatorConfig config)
    : config_(std::move(config)) {
  config_.validate();
  if (!config_.cache_dir.empty()) {
    store_ = std::make_unique<VerdictStore>(config_.cache_dir);
  }
}

CoordinatorService::~CoordinatorService() {
  begin_drain();
  wait_drained();
}

JsonReport CoordinatorService::error_report(const std::string& code,
                                            const std::string& message) const {
  return JsonReport("error")
      .set_string("code", code)
      .set_string("error", message);
}

void CoordinatorService::reply(const Emit& emit, FrameKind kind,
                               u64 request_id,
                               const JsonReport& report) const {
  emit(Frame{kind, request_id, report.to_json()});
}

void CoordinatorService::handle(const Frame& request, Emit emit,
                                u64 client_id) {
  switch (request.kind) {
    case FrameKind::kPing:
      reply(emit, FrameKind::kResult, request.request_id,
            JsonReport("pong")
                .set_u64("protocol_version", 1)
                .set_string("role", "coordinator")
                .set_u64("workers", config_.workers.size()));
      return;
    case FrameKind::kStats:
      reply(emit, FrameKind::kResult, request.request_id, stats_report());
      return;
    case FrameKind::kStoreLookup:
    case FrameKind::kStorePublish: {
      if (store_ == nullptr) {
        reply(emit, FrameKind::kError, request.request_id,
              error_report("no_store",
                           "this coordinator runs without a verdict store "
                           "(start it with --cache-dir)"));
        return;
      }
      try {
        const FlatJson params = FlatJson::parse(
            request.payload.empty() ? "{}" : request.payload);
        if (request.kind == FrameKind::kStoreLookup) {
          u64 keys = 0, hits = 0;
          const JsonReport report =
              answer_store_lookup(*store_, params, &keys, &hits);
          {
            std::lock_guard lock(mutex_);
            store_lookups_ += keys;
            store_hits_ += hits;
          }
          reply(emit, FrameKind::kResult, request.request_id, report);
        } else {
          u64 entries = 0;
          const JsonReport report =
              answer_store_publish(*store_, params, &entries);
          {
            std::lock_guard lock(mutex_);
            store_publishes_ += entries;
          }
          reply(emit, FrameKind::kResult, request.request_id, report);
        }
      } catch (const Error& e) {
        reply(emit, FrameKind::kError, request.request_id,
              error_report("bad_request", e.what()));
      }
      return;
    }
    case FrameKind::kCancel: {
      u64 target = 0;
      try {
        target = FlatJson::parse(request.payload).get_u64("target_id", 0);
      } catch (const Error& e) {
        reply(emit, FrameKind::kError, request.request_id,
              error_report("bad_request", e.what()));
        return;
      }
      bool cancelled = false;
      {
        std::lock_guard lock(mutex_);
        for (LiveCampaign& c : live_) {
          if (c.client_id == client_id && c.request_id == target) {
            c.cancelled->store(true, std::memory_order_relaxed);
            cancelled = true;
          }
        }
      }
      reply(emit, FrameKind::kResult, request.request_id,
            JsonReport("cancel")
                .set_u64("target_id", target)
                .set_bool("cancelled", cancelled));
      return;
    }
    case FrameKind::kCampaign:
      break;  // the sharded fleet campaign, admitted below
    default:
      reply(emit, FrameKind::kError, request.request_id,
            error_report("bad_request",
                         std::string("not a coordinator request kind: ") +
                             frame_kind_name(request.kind)));
      return;
  }

  // Parse before admission: a malformed request costs a typed reply, not a
  // runner thread.
  try {
    (void)FlatJson::parse(request.payload.empty() ? "{}" : request.payload);
  } catch (const Error& e) {
    reply(emit, FrameKind::kError, request.request_id,
          error_report("bad_request", e.what()));
    return;
  }

  auto cancelled = std::make_shared<std::atomic<bool>>(false);
  {
    std::lock_guard lock(mutex_);
    const char* busy = nullptr;
    if (draining_.load(std::memory_order_acquire)) {
      busy = "draining";
    } else if (running_ >= config_.max_concurrent) {
      busy = "at_capacity";
    }
    if (busy != nullptr) {
      // Replying under mutex_ is fine here: emit only enqueues bytes.
      reply(emit, FrameKind::kBusy, request.request_id,
            JsonReport("busy")
                .set_string("reason", busy)
                .set_u64("retry_after_ms", 250));
      return;
    }
    running_ += 1;
    campaigns_total_ += 1;
    live_.push_back({client_id, request.request_id, cancelled});
    runners_.emplace_back(
        [this, request, emit, cancelled, client_id]() mutable {
          run_fleet_campaign(request, std::move(emit), cancelled);
          finish_campaign(client_id, request.request_id);
        });
  }
  reply(emit, FrameKind::kAccepted, request.request_id,
        JsonReport("accepted")
            .set_u64("workers", config_.workers.size())
            .set_u64("shards_per_worker", config_.shards_per_worker));
}

void CoordinatorService::run_fleet_campaign(
    const Frame& request, Emit emit,
    std::shared_ptr<std::atomic<bool>> cancelled) {
  const u64 id = request.request_id;
  try {
    FabricOptions options;
    options.workers = config_.workers;
    options.params = FlatJson::parse(
        request.payload.empty() ? "{}" : request.payload);
    options.shards_per_worker = config_.shards_per_worker;
    options.lease_ms = config_.lease_ms;
    options.checkpoint_every_chunks = config_.checkpoint_every_chunks;
    if (store_ != nullptr) options.remote_store_socket = config_.socket_path;
    options.cancelled = cancelled.get();
    if (options.params.get_bool("progress", false)) {
      options.on_progress = [this, emit, id](const JsonReport& p) {
        reply(emit, FrameKind::kProgress, id, p);
      };
    }
    FabricResult result = run_fabric_campaign(options);
    {
      std::lock_guard lock(mutex_);
      reassignments_total_ += result.reassignments;
      resumed_injections_total_ += result.resumed_injections;
    }
    reply(emit, FrameKind::kResult, id, result.merged);
  } catch (const std::exception& e) {
    {
      std::lock_guard lock(mutex_);
      campaigns_failed_ += 1;
    }
    reply(emit, FrameKind::kError, id, error_report("failed", e.what()));
  }
}

void CoordinatorService::finish_campaign(u64 client_id, u64 request_id) {
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < live_.size(); ++i) {
    if (live_[i].client_id == client_id &&
        live_[i].request_id == request_id) {
      live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  running_ -= 1;
  drained_cv_.notify_all();
}

void CoordinatorService::begin_drain() {
  draining_.store(true, std::memory_order_release);
}

void CoordinatorService::wait_drained() {
  std::vector<std::thread> runners;
  {
    std::unique_lock lock(mutex_);
    drained_cv_.wait(lock, [this] { return running_ == 0; });
    runners.swap(runners_);
  }
  // Joined outside the lock: a runner's last act (finish_campaign) takes it.
  for (std::thread& t : runners) {
    if (t.joinable()) t.join();
  }
  if (store_) store_->flush();
}

bool CoordinatorService::idle() const {
  std::lock_guard lock(mutex_);
  return running_ == 0;
}

void CoordinatorService::cancel_client(u64 client_id) {
  std::lock_guard lock(mutex_);
  for (LiveCampaign& c : live_) {
    if (c.client_id == client_id) {
      c.cancelled->store(true, std::memory_order_relaxed);
    }
  }
}

void CoordinatorService::cancel_all() {
  std::lock_guard lock(mutex_);
  for (LiveCampaign& c : live_) {
    c.cancelled->store(true, std::memory_order_relaxed);
  }
}

JsonReport CoordinatorService::stats_report() const {
  std::lock_guard lock(mutex_);
  JsonReport report("coordinator_stats");
  report.set_u64("workers", config_.workers.size());
  report.set_u64("campaigns_active", running_);
  report.set_u64("campaigns_total", campaigns_total_);
  report.set_u64("campaigns_failed", campaigns_failed_);
  report.set_u64("reassignments_total", reassignments_total_);
  report.set_u64("resumed_injections_total", resumed_injections_total_);
  report.set_u64("store_lookups", store_lookups_);
  report.set_u64("store_hits", store_hits_);
  report.set_u64("store_publishes", store_publishes_);
  report.set_u64("store_size", store_ ? store_->size() : 0);
  return report;
}

}  // namespace vscrub
