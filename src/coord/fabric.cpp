#include "coord/fabric.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/log.h"
#include "svc/session.h"

namespace vscrub {
namespace {

using Clock = std::chrono::steady_clock;

/// A typed kError from a worker is retried on another worker this many
/// times before the fabric gives up on the range (a deterministic error —
/// bad parameters, say — would otherwise requeue forever).
constexpr u64 kRangeErrorBudget = 3;

/// Consecutive dropped-connection errors a driver tolerates before it
/// declares its worker dead. The session's reconnect runs on the reader
/// thread with its own backoff; while it is still dialing, a submit fails
/// with kConnectionLost rather than kReconnectFailed, so without a budget
/// the driver would spin through the queue stealing ranges from a link
/// that is down for good.
constexpr u64 kLinkFailureBudget = 3;

/// The campaign parameters a fabric request forwards to its workers.
/// Allow-listed by name and type: the coordinator re-renders them into each
/// shard's request, so an unknown or transport-level field can never leak
/// into a worker campaign and skew its fingerprint.
struct ParamSpec {
  const char* name;
  char type;  // 's'tring / 'u'64 / 'b'ool
};
constexpr ParamSpec kForwarded[] = {
    {"design", 's'},   {"device", 's'},       {"gang_isa", 's'},
    {"tenant", 's'},   {"sample", 'u'},       {"seed", 'u'},
    {"chunk", 'u'},    {"gang_width", 'u'},   {"exhaustive", 'b'},
    {"no_gang", 'b'},  {"no_gang_plan", 'b'}, {"no_prune", 'b'},
    {"persistence", 'b'},
};

struct RangeState {
  BitRange range;
  /// Latest shipped VSCK blob (hex) — the range's restart point.
  std::string checkpoint_hex;
  /// Dispatch epoch: a zombie attempt's frames are ignored unless its
  /// epoch is still current, so a reassigned range can never have its
  /// fresh checkpoint overwritten by a stale one.
  u64 attempt = 0;
  u64 error_attempts = 0;
  bool done = false;
  FlatJson report;         ///< the range's campaign report once done
  u64 live_injections = 0; ///< progress snapshot (final count once done)
  Clock::time_point last_event{};
};

struct Shared {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<RangeState> ranges;
  std::deque<std::size_t> queue;  ///< pending range indices
  std::size_t done_count = 0;
  std::size_t active_drivers = 0;
  bool cancelled = false;
  u64 reassignments = 0;
  u64 duplicates = 0;
  u64 workers_lost = 0;
  std::string fatal;  ///< first fatal condition; set once
};

/// Builds the merged progress snapshot under the shared mutex; emitted
/// outside it.
JsonReport fabric_progress_locked(const Shared& shared, u64 universe) {
  u64 injections_done = 0;
  for (const RangeState& rs : shared.ranges) injections_done +=
      rs.live_injections;
  JsonReport p("fabric_progress");
  p.set_u64("injections_done", injections_done);
  p.set_u64("injections_total", universe);
  p.set_u64("ranges_done", shared.done_count);
  p.set_u64("ranges_total", shared.ranges.size());
  p.set_u64("reassignments", shared.reassignments);
  return p;
}

void requeue_locked(Shared& shared, std::size_t index) {
  shared.queue.push_back(index);
  shared.reassignments += 1;
  shared.cv.notify_all();
}

void set_fatal_locked(Shared& shared, const std::string& message) {
  if (shared.fatal.empty()) shared.fatal = message;
  shared.cv.notify_all();
}

/// One worker link: pops ranges, runs them on this worker, streams events
/// into the shared state. Exits when the campaign is finished/cancelled/
/// fatal, or when this worker is lost (dead link or expired lease) — its
/// in-flight range is requeued first, so the survivors absorb the work.
void run_driver(const FabricOptions& options, Shared& shared,
                const std::string& socket, u64 universe) {
  struct DriverExit {
    Shared& shared;
    ~DriverExit() {
      std::lock_guard lock(shared.mutex);
      shared.active_drivers -= 1;
      if (shared.active_drivers == 0 &&
          shared.done_count < shared.ranges.size() && !shared.cancelled) {
        set_fatal_locked(shared,
                         "fabric: every worker link lost with ranges "
                         "outstanding");
      }
      shared.cv.notify_all();
    }
  } exit_guard{shared};

  std::optional<ServiceSession> session;
  try {
    session.emplace(ServiceSession::connect_unix(
        socket, ReconnectPolicy{3, 50, 1000}));
  } catch (const Error& e) {
    VSCRUB_WARN("fabric: worker ", socket, " unreachable: ", e.what());
    std::lock_guard lock(shared.mutex);
    shared.workers_lost += 1;
    return;
  }

  u64 link_failures = 0;
  while (true) {
    std::size_t index = 0;
    u64 my_attempt = 0;
    std::string resume_hex;
    {
      std::unique_lock lock(shared.mutex);
      while (true) {
        if (!shared.fatal.empty() || shared.cancelled ||
            shared.done_count == shared.ranges.size()) {
          return;
        }
        if (!shared.queue.empty()) break;
        shared.cv.wait_for(lock, std::chrono::milliseconds(100));
        if (options.cancelled != nullptr &&
            options.cancelled->load(std::memory_order_relaxed)) {
          shared.cancelled = true;
          shared.cv.notify_all();
        }
      }
      index = shared.queue.front();
      shared.queue.pop_front();
      RangeState& rs = shared.ranges[index];
      rs.attempt += 1;
      my_attempt = rs.attempt;
      resume_hex = rs.checkpoint_hex;
      rs.last_event = Clock::now();
      rs.live_injections = 0;
    }
    RangeState& rs = shared.ranges[index];

    // The shard request: the allow-listed campaign parameters plus this
    // range, checkpoint shipping, and the fleet's remote verdict tier.
    JsonReport request("campaign_shard");
    for (const ParamSpec& spec : kForwarded) {
      if (!options.params.has(spec.name)) continue;
      switch (spec.type) {
        case 's':
          request.set_string(spec.name, options.params.get_string(spec.name));
          break;
        case 'u':
          request.set_u64(spec.name, options.params.get_u64(spec.name));
          break;
        default:
          request.set_bool(spec.name, options.params.get_bool(spec.name));
      }
    }
    request.set_u64("range_begin", rs.range.begin);
    request.set_u64("range_end", rs.range.end);
    request.set_bool("ship_checkpoints", true);
    request.set_bool("progress", true);
    request.set_u64("progress_every_chunks",
                    options.params.get_u64("progress_every_chunks", 4));
    if (options.checkpoint_every_chunks > 0) {
      request.set_u64("checkpoint_every_chunks",
                      options.checkpoint_every_chunks);
    }
    if (!options.remote_store_socket.empty()) {
      request.set_string("remote_store_socket", options.remote_store_socket);
    }
    if (!resume_hex.empty()) {
      request.set_string("resume_checkpoint", resume_hex);
    }

    // Event stream: every frame is a lease heartbeat; checkpoints update
    // the range's restart point (current attempt only — a zombie's blob
    // must not clobber the live attempt's).
    const auto on_event = [&options, &shared, &rs, my_attempt,
                           universe](const Frame& frame) {
      std::optional<JsonReport> progress;
      {
        std::lock_guard lock(shared.mutex);
        if (rs.attempt != my_attempt || rs.done) return;
        rs.last_event = Clock::now();
        try {
          if (frame.kind == FrameKind::kCheckpoint) {
            const std::string blob =
                FlatJson::parse(frame.payload).get_string("blob");
            if (!blob.empty()) rs.checkpoint_hex = blob;
          } else if (frame.kind == FrameKind::kProgress) {
            rs.live_injections =
                FlatJson::parse(frame.payload).get_u64("injections_done");
            progress = fabric_progress_locked(shared, universe);
          }
        } catch (const Error&) {
          // A malformed event frame is dropped; the terminal reply decides.
        }
      }
      if (progress.has_value() && options.on_progress) {
        options.on_progress(*progress);
      }
    };

    std::optional<Frame> terminal;
    try {
      JobHandle handle =
          session->submit(FrameKind::kCampaign, request.to_json(), on_event);
      bool cancel_sent = false;
      while (!terminal.has_value()) {
        terminal = handle.wait_for(std::chrono::milliseconds(100));
        if (terminal.has_value()) break;
        if (options.cancelled != nullptr &&
            options.cancelled->load(std::memory_order_relaxed)) {
          std::lock_guard lock(shared.mutex);
          shared.cancelled = true;
          shared.cv.notify_all();
        }
        bool want_cancel = false;
        bool lease_expired = false;
        {
          std::lock_guard lock(shared.mutex);
          want_cancel = (shared.cancelled || !shared.fatal.empty()) &&
                        !cancel_sent;
          lease_expired =
              !shared.cancelled && shared.fatal.empty() &&
              Clock::now() - rs.last_event >
                  std::chrono::milliseconds(options.lease_ms);
        }
        if (want_cancel) {
          cancel_sent = true;
          try {
            handle.cancel();
          } catch (const Error&) {
            break;  // link gone; nothing left to collect
          }
        }
        if (lease_expired) {
          // Hung worker: forfeit the range (latest checkpoint travels with
          // it) and stop trusting this link. A later zombie completion is
          // dropped by the first-wins rule.
          try {
            handle.cancel();
          } catch (const Error&) {
          }
          std::lock_guard lock(shared.mutex);
          requeue_locked(shared, index);
          shared.workers_lost += 1;
          return;
        }
      }
    } catch (const SessionError& e) {
      link_failures += 1;
      const bool lost_link =
          e.code() == SessionErrorCode::kReconnectFailed ||
          link_failures >= kLinkFailureBudget;
      {
        std::lock_guard lock(shared.mutex);
        requeue_locked(shared, index);
        if (lost_link) {
          shared.workers_lost += 1;
        }
      }
      if (lost_link) return;
      // A dropped connection whose redial may still be in flight: the range
      // goes back on the queue, and this driver gives the reader thread's
      // reconnect a beat before trying the new connection.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      continue;
    }

    if (!terminal.has_value()) return;  // cancel raced a dead link
    link_failures = 0;  // the link delivered a terminal: it is healthy

    const Frame& reply = *terminal;
    if (reply.kind == FrameKind::kResult) {
      FlatJson report;
      bool ok = true;
      try {
        report = FlatJson::parse(reply.payload);
      } catch (const Error&) {
        ok = false;
      }
      std::unique_lock lock(shared.mutex);
      if (ok && report.get_bool("interrupted")) {
        // A worker-side stop (drain, hard signal) delivered a partial
        // report; the range resumes elsewhere from its checkpoint.
        if (!rs.done) requeue_locked(shared, index);
        continue;
      }
      if (rs.done) {
        shared.duplicates += 1;
      } else if (ok) {
        rs.done = true;
        rs.report = report;
        rs.live_injections = report.get_u64("injections");
        shared.done_count += 1;
        shared.cv.notify_all();
      } else {
        rs.error_attempts += 1;
        if (rs.error_attempts >= kRangeErrorBudget) {
          set_fatal_locked(shared, "fabric: worker returned an unparseable "
                                   "range report repeatedly");
        } else {
          requeue_locked(shared, index);
        }
      }
    } else if (reply.kind == FrameKind::kBusy) {
      // Admission pushback: give the worker a beat, then retry the range
      // (any driver may pick it up).
      {
        std::lock_guard lock(shared.mutex);
        requeue_locked(shared, index);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    } else {  // kError
      std::string message = "worker error";
      try {
        message = FlatJson::parse(reply.payload).get_string("message",
                                                            message);
      } catch (const Error&) {
      }
      std::lock_guard lock(shared.mutex);
      rs.error_attempts += 1;
      if (rs.error_attempts >= kRangeErrorBudget) {
        set_fatal_locked(shared, "fabric: range " +
                                     std::to_string(rs.range.begin) + ".." +
                                     std::to_string(rs.range.end) +
                                     " failed repeatedly: " + message);
      } else {
        requeue_locked(shared, index);
      }
    }
  }
}

}  // namespace

FabricResult run_fabric_campaign(const FabricOptions& options) {
  VSCRUB_CHECK(!options.workers.empty(), "fabric: no workers configured");
  VSCRUB_CHECK(options.shards_per_worker > 0,
               "fabric: shards_per_worker must be positive");
  const auto started = Clock::now();
  const u64 universe = campaign_universe_size(options.params);
  const std::vector<BitRange> ranges = partition_universe(
      universe, options.workers.size() * options.shards_per_worker);
  VSCRUB_CHECK(!ranges.empty(), "fabric: empty injection universe");

  Shared shared;
  shared.ranges.resize(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    shared.ranges[i].range = ranges[i];
    shared.queue.push_back(i);
  }
  shared.active_drivers = options.workers.size();

  std::vector<std::thread> drivers;
  drivers.reserve(options.workers.size());
  for (const std::string& socket : options.workers) {
    drivers.emplace_back([&options, &shared, &socket, universe] {
      run_driver(options, shared, socket, universe);
    });
  }
  for (std::thread& t : drivers) t.join();

  FabricResult result;
  {
    std::lock_guard lock(shared.mutex);
    result.interrupted =
        shared.cancelled || shared.done_count < shared.ranges.size();
    if (!shared.fatal.empty() && !shared.cancelled) {
      throw Error(shared.fatal);
    }
    result.ranges = shared.ranges.size();
    result.workers_lost = shared.workers_lost;
    result.reassignments = shared.reassignments;
    result.duplicate_completions = shared.duplicates;

    // The exact merge: counters sum, the order-independent sensitive-set
    // digest XOR-folds. Disjoint covering ranges therefore reproduce the
    // one-shot campaign's report field-for-field.
    u64 injections = 0, failures = 0, persistent = 0, pruned = 0;
    u64 cache_hits = 0, cache_misses = 0, cache_stores = 0;
    u64 sensitive_bits = 0, digest = 0, device_bits = 0;
    double modeled_s = 0.0;
    bool cache_enabled = false;
    std::string design_name, device_name;
    for (const RangeState& rs : shared.ranges) {
      if (!rs.done) continue;
      const FlatJson& r = rs.report;
      if (design_name.empty()) {
        design_name = r.get_string("design");
        device_name = r.get_string("device");
        device_bits = r.get_u64("device_bits");
      }
      injections += r.get_u64("injections");
      failures += r.get_u64("failures");
      persistent += r.get_u64("persistent");
      pruned += r.get_u64("pruned");
      cache_hits += r.get_u64("cache_hits");
      cache_misses += r.get_u64("cache_misses");
      cache_stores += r.get_u64("cache_stores");
      sensitive_bits += r.get_u64("sensitive_bits");
      digest ^= r.get_u64("sensitive_digest");
      modeled_s += r.get_double("modeled_hardware_s");
      cache_enabled = cache_enabled || r.get_bool("cache_enabled");
      result.resumed_injections += r.get_u64("resumed_injections");
      result.remote_hits += r.get_u64("remote_hits");
      result.remote_publishes += r.get_u64("remote_publishes");
    }
    const double wall =
        std::chrono::duration<double>(Clock::now() - started).count();
    result.merged.set_string("design", design_name);
    result.merged.set_string("device", device_name);
    result.merged.set_u64("device_bits", device_bits);
    result.merged.set_u64("injections", injections);
    result.merged.set_u64("failures", failures);
    result.merged.set_u64("persistent", persistent);
    result.merged.set_u64("pruned", pruned);
    result.merged.set_u64("resumed_injections", result.resumed_injections);
    result.merged.set("sensitivity",
                      injections ? static_cast<double>(failures) /
                                       static_cast<double>(injections)
                                 : 0.0);
    result.merged.set("persistence_ratio",
                      failures ? static_cast<double>(persistent) /
                                     static_cast<double>(failures)
                               : 0.0);
    result.merged.set("modeled_hardware_s", modeled_s);
    result.merged.set("wall_seconds", wall);
    result.merged.set_bool("interrupted", result.interrupted);
    result.merged.set_bool("cache_enabled", cache_enabled);
    result.merged.set_u64("cache_hits", cache_hits);
    result.merged.set_u64("cache_misses", cache_misses);
    result.merged.set_u64("cache_stores", cache_stores);
    result.merged.set_u64("remote_hits", result.remote_hits);
    result.merged.set_u64("remote_publishes", result.remote_publishes);
    result.merged.set_u64("sensitive_bits", sensitive_bits);
    result.merged.set_u64("sensitive_digest", digest);
    result.merged.set_u64("fabric_workers", options.workers.size());
    result.merged.set_u64("fabric_workers_lost", result.workers_lost);
    result.merged.set_u64("fabric_ranges", result.ranges);
    result.merged.set_u64("fabric_reassignments", result.reassignments);
    result.merged.set_u64("fabric_duplicate_completions",
                          result.duplicate_completions);
  }
  return result;
}

}  // namespace vscrub
