// One JSON serializer for every machine-readable report the toolkit emits.
// Campaign, recampaign, mission, fleet and bench outputs used to carry their
// own ad-hoc emitters; they now all build a JsonReport, so every artifact
// opens with the same two fields —
//
//   "schema_version": <kReportSchemaVersion>,
//   "kind": "<campaign|recampaign|mission|fleet|bench>"
//
// — and shares one escaping and number-formatting policy. Consumers (the CI
// gates, downstream dashboards) key on schema_version instead of sniffing
// shapes; bump it on any breaking change to a report's field set.
#pragma once

#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"

namespace vscrub {

/// Version of the report field-set contract shared by every JSON artifact.
inline constexpr int kReportSchemaVersion = 1;

/// An insertion-ordered flat JSON object. Small by design: reports here are
/// one object of scalars, not a document tree.
class JsonReport {
 public:
  /// Seeds the report with schema_version and kind.
  explicit JsonReport(const std::string& kind);

  JsonReport& set(const std::string& name, double v);
  JsonReport& set_u64(const std::string& name, u64 v);
  JsonReport& set_bool(const std::string& name, bool v);
  JsonReport& set_string(const std::string& name, const std::string& v);
  /// Appends every flattened metric of a registry (counters and gauges
  /// verbatim, histograms expanded to _count/_mean/_p50/_p99).
  JsonReport& add_metrics(const MetricsRegistry& metrics);

  /// The serialized object, `{\n  "name": value,\n ...}\n`.
  std::string to_json() const;
  /// Writes to_json() to `path`. Returns false (with a warning on stderr)
  /// when the file cannot be written; callers keep going.
  bool write(const std::string& path) const;

 private:
  void add_raw(const std::string& name, std::string rendered);

  struct Field {
    std::string name;
    std::string rendered;  ///< value as final JSON text
  };
  std::vector<Field> fields_;
};

}  // namespace vscrub
