#include "report/json.h"

#include <cstdio>

namespace vscrub {
namespace {

std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

JsonReport::JsonReport(const std::string& kind) {
  set_u64("schema_version", kReportSchemaVersion);
  set_string("kind", kind);
}

void JsonReport::add_raw(const std::string& name, std::string rendered) {
  for (auto& f : fields_) {
    if (f.name == name) {
      f.rendered = std::move(rendered);
      return;
    }
  }
  fields_.push_back({name, std::move(rendered)});
}

JsonReport& JsonReport::set(const std::string& name, double v) {
  char buf[64];
  // %.17g round-trips doubles; integral values print without a point.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  add_raw(name, buf);
  return *this;
}

JsonReport& JsonReport::set_u64(const std::string& name, u64 v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  add_raw(name, buf);
  return *this;
}

JsonReport& JsonReport::set_bool(const std::string& name, bool v) {
  add_raw(name, v ? "true" : "false");
  return *this;
}

JsonReport& JsonReport::set_string(const std::string& name,
                                   const std::string& v) {
  std::string quoted;
  quoted.reserve(v.size() + 2);
  quoted.push_back('"');
  quoted += escaped(v);
  quoted.push_back('"');
  add_raw(name, std::move(quoted));
  return *this;
}

JsonReport& JsonReport::add_metrics(const MetricsRegistry& metrics) {
  for (const auto& [name, value] : metrics.flattened()) set(name, value);
  return *this;
}

std::string JsonReport::to_json() const {
  std::string out = "{\n";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    out += "  \"" + escaped(fields_[i].name) + "\": " + fields_[i].rendered;
    out += i + 1 < fields_.size() ? ",\n" : "\n";
  }
  out += "}\n";
  return out;
}

bool JsonReport::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "report: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  return ok;
}

}  // namespace vscrub
