#include "common/bitvector.h"

#include <algorithm>
#include <bit>

namespace vscrub {

BitVector::BitVector(std::size_t nbits, bool fill_value)
    : nbits_(nbits), words_((nbits + 63) / 64, fill_value ? ~u64{0} : u64{0}) {
  mask_tail();
}

void BitVector::mask_tail() {
  const unsigned rem = nbits_ & 63;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (u64{1} << rem) - 1;
  }
}

u64 BitVector::word_at(std::size_t i, unsigned nbits) const {
  VSCRUB_CHECK(nbits <= 64 && i + nbits <= nbits_, "word_at out of range");
  if (nbits == 0) return 0;
  const std::size_t w = i >> 6;
  const unsigned off = static_cast<unsigned>(i & 63);
  u64 value = words_[w] >> off;
  if (off + nbits > 64) {
    value |= words_[w + 1] << (64 - off);
  }
  if (nbits < 64) {
    value &= (u64{1} << nbits) - 1;
  }
  return value;
}

void BitVector::set_word_at(std::size_t i, unsigned nbits, u64 value) {
  VSCRUB_CHECK(nbits <= 64 && i + nbits <= nbits_, "set_word_at out of range");
  if (nbits == 0) return;
  if (nbits < 64) {
    value &= (u64{1} << nbits) - 1;
  }
  const std::size_t w = i >> 6;
  const unsigned off = static_cast<unsigned>(i & 63);
  const u64 lo_mask = (nbits < 64 ? ((u64{1} << nbits) - 1) : ~u64{0}) << off;
  words_[w] = (words_[w] & ~lo_mask) | (value << off);
  if (off + nbits > 64) {
    const unsigned hi_bits = static_cast<unsigned>(off + nbits - 64);
    const u64 hi_mask = (u64{1} << hi_bits) - 1;
    words_[w + 1] = (words_[w + 1] & ~hi_mask) | (value >> (64 - off));
  }
}

void BitVector::fill(bool v) {
  std::fill(words_.begin(), words_.end(), v ? ~u64{0} : u64{0});
  mask_tail();
}

void BitVector::resize(std::size_t nbits, bool fill_value) {
  const std::size_t old_bits = nbits_;
  nbits_ = nbits;
  words_.resize((nbits + 63) / 64, fill_value ? ~u64{0} : u64{0});
  if (fill_value && nbits > old_bits) {
    // Set any bits in the previously-partial tail word.
    for (std::size_t i = old_bits; i < std::min(nbits, (old_bits + 63) & ~std::size_t{63}); ++i) {
      set(i, true);
    }
  }
  mask_tail();
}

std::size_t BitVector::popcount() const {
  std::size_t n = 0;
  for (u64 w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::size_t BitVector::first_difference(const BitVector& other) const {
  VSCRUB_CHECK(nbits_ == other.nbits_, "size mismatch in first_difference");
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const u64 diff = words_[w] ^ other.words_[w];
    if (diff != 0) {
      return (w << 6) + static_cast<std::size_t>(std::countr_zero(diff));
    }
  }
  return nbits_;
}

std::size_t BitVector::hamming_distance(const BitVector& other) const {
  VSCRUB_CHECK(nbits_ == other.nbits_, "size mismatch in hamming_distance");
  std::size_t n = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    n += static_cast<std::size_t>(std::popcount(words_[w] ^ other.words_[w]));
  }
  return n;
}

std::vector<u8> BitVector::to_bytes() const {
  std::vector<u8> bytes((nbits_ + 7) / 8, 0);
  for (std::size_t b = 0; b < bytes.size(); ++b) {
    const std::size_t bit = b * 8;
    const unsigned n = static_cast<unsigned>(std::min<std::size_t>(8, nbits_ - bit));
    bytes[b] = static_cast<u8>(word_at(bit, n));
  }
  return bytes;
}

BitVector BitVector::from_bytes(const std::vector<u8>& bytes, std::size_t nbits) {
  VSCRUB_CHECK(bytes.size() >= (nbits + 7) / 8, "byte buffer too small");
  BitVector bv(nbits);
  for (std::size_t b = 0; b * 8 < nbits; ++b) {
    const std::size_t bit = b * 8;
    const unsigned n = static_cast<unsigned>(std::min<std::size_t>(8, nbits - bit));
    bv.set_word_at(bit, n, bytes[b]);
  }
  return bv;
}

bool BitVector::operator==(const BitVector& other) const {
  return nbits_ == other.nbits_ && words_ == other.words_;
}

}  // namespace vscrub
