// CRC primitives for the frame codebook (paper: the Actel controller
// calculates a CRC per configuration frame and compares with a codebook of
// stored CRCs).
#pragma once

#include <span>
#include <vector>

#include "common/types.h"

namespace vscrub {

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) — compact enough for a
/// per-frame codebook held in the controller's local SRAM.
u16 crc16_ccitt(std::span<const u8> data);

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) — used for whole-bitstream
/// integrity of images stored in flash.
u32 crc32(std::span<const u8> data);

/// Incremental CRC-32 (pass the previous return value as `state`, start with
/// crc32_init(), finish with crc32_final()).
u32 crc32_init();
u32 crc32_update(u32 state, std::span<const u8> data);
u32 crc32_final(u32 state);

}  // namespace vscrub
