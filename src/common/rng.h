// Deterministic, splittable PRNG plus the sampling distributions used by the
// radiation models and injection campaigns. Header-only for inlining in the
// simulator's hot loops.
#pragma once

#include <cmath>

#include "common/types.h"

namespace vscrub {

/// xoshiro256** 1.0 — fast, high-quality, and (unlike std::mt19937) cheap to
/// copy per worker thread. Deterministic across platforms, which the
/// regression tests rely on.
class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    u64 x = seed;
    for (auto& s : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  u64 next() {
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n).
  u64 uniform(u64 n) {
    // Lemire's nearly-divisionless bounded sampling.
    u64 x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    u64 l = static_cast<u64>(m);
    if (l < n) {
      const u64 t = (0 - n) % n;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<u64>(m);
      }
    }
    return static_cast<u64>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) { return uniform01() < p; }

  /// Exponential with given rate (events per unit); used for Poisson arrival
  /// inter-event times in the orbit and beam models.
  double exponential(double rate) {
    double u;
    do {
      u = uniform01();
    } while (u <= 0.0);
    return -std::log(u) / rate;
  }

  /// Poisson sample; inversion for small mean, normal approximation with
  /// rejection-free rounding for large mean (adequate for event counting).
  u64 poisson(double mean) {
    if (mean <= 0.0) return 0;
    if (mean < 30.0) {
      const double l = std::exp(-mean);
      u64 k = 0;
      double p = 1.0;
      do {
        ++k;
        p *= uniform01();
      } while (p > l);
      return k - 1;
    }
    const double g = gaussian() * std::sqrt(mean) + mean;
    return g < 0.0 ? 0 : static_cast<u64>(g + 0.5);
  }

  /// Standard normal via Box–Muller (one value per call; simple and stateless).
  double gaussian() {
    double u1;
    do {
      u1 = uniform01();
    } while (u1 <= 0.0);
    const double u2 = uniform01();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Derives an independent stream, for per-thread campaign workers.
  Rng split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  u64 s_[4]{};
};

}  // namespace vscrub
