// Fundamental scalar types and the simulation time model shared by every
// vscrub module.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace vscrub {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Error type thrown by all vscrub modules for contract violations and
/// unrecoverable conditions. Recoverable conditions (e.g. router congestion)
/// are reported through status returns instead.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

#define VSCRUB_CHECK(cond, msg)                                      \
  do {                                                               \
    if (!(cond)) {                                                   \
      throw ::vscrub::Error(std::string("vscrub check failed: ") +   \
                            (msg) + " [" #cond "]");                 \
    }                                                                \
  } while (false)

/// Simulated wall-clock time, used by the SelectMAP port model, the scrub
/// controller, and the mission simulator. Picosecond resolution lets us
/// represent both a single configuration-clock byte (tens of ns) and a
/// multi-day mission without loss.
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime picoseconds(i64 ps) { return SimTime(ps); }
  static constexpr SimTime nanoseconds(double ns) {
    return SimTime(static_cast<i64>(ns * 1e3));
  }
  static constexpr SimTime microseconds(double us) {
    return SimTime(static_cast<i64>(us * 1e6));
  }
  static constexpr SimTime milliseconds(double ms) {
    return SimTime(static_cast<i64>(ms * 1e9));
  }
  static constexpr SimTime seconds(double s) {
    return SimTime(static_cast<i64>(s * 1e12));
  }
  static constexpr SimTime hours(double h) { return seconds(h * 3600.0); }

  constexpr i64 ps() const { return ps_; }
  constexpr double ns() const { return static_cast<double>(ps_) * 1e-3; }
  constexpr double us() const { return static_cast<double>(ps_) * 1e-6; }
  constexpr double ms() const { return static_cast<double>(ps_) * 1e-9; }
  constexpr double sec() const { return static_cast<double>(ps_) * 1e-12; }

  constexpr SimTime operator+(SimTime o) const { return SimTime(ps_ + o.ps_); }
  constexpr SimTime operator-(SimTime o) const { return SimTime(ps_ - o.ps_); }
  constexpr SimTime operator*(i64 n) const { return SimTime(ps_ * n); }
  constexpr SimTime operator*(double f) const {
    return SimTime(static_cast<i64>(static_cast<double>(ps_) * f));
  }
  SimTime& operator+=(SimTime o) {
    ps_ += o.ps_;
    return *this;
  }
  constexpr auto operator<=>(const SimTime&) const = default;

 private:
  constexpr explicit SimTime(i64 ps) : ps_(ps) {}
  i64 ps_ = 0;
};

}  // namespace vscrub
