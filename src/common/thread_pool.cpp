#include "common/thread_pool.h"

#include <algorithm>

#include "common/log.h"

namespace vscrub {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
    if (joined_) return;
    joined_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : workers_) t.join();
}

bool ThreadPool::stopping() const {
  std::lock_guard lock(mutex_);
  return stop_;
}

bool ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    if (stop_) {
      VSCRUB_WARN("thread_pool: submit() on a stopped pool; task dropped");
      return false;
    }
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(u64 n,
                              const std::function<void(u64, u64)>& fn) {
  if (n == 0) return;
  const u64 shards = std::min<u64>(n, thread_count());
  const u64 chunk = (n + shards - 1) / shards;
  Latch latch;
  latch.remaining = static_cast<unsigned>(shards);
  unsigned queued = 0;
  for (u64 s = 0; s < shards; ++s) {
    const u64 begin = s * chunk;
    const u64 end = std::min(n, begin + chunk);
    if (begin >= end) {
      latch.arrive();
      continue;
    }
    if (submit([&fn, &latch, begin, end] {
          fn(begin, end);
          latch.arrive();
        })) {
      ++queued;
    } else {
      // Stopped pool: keep the caller's work correct by running inline.
      fn(begin, end);
      latch.arrive();
    }
  }
  if (queued > 0) latch.wait();
}

unsigned ThreadPool::chunk_workers(u64 n, u64 chunk_size) const {
  if (n == 0) return 0;
  chunk_size = std::max<u64>(1, chunk_size);
  const u64 nchunks = (n + chunk_size - 1) / chunk_size;
  return static_cast<unsigned>(std::min<u64>(nchunks, thread_count()));
}

void ThreadPool::parallel_chunks(
    u64 n, u64 chunk_size,
    const std::function<void(u64, u64, unsigned)>& fn) {
  if (n == 0) return;
  chunk_size = std::max<u64>(1, chunk_size);
  const u64 nchunks = (n + chunk_size - 1) / chunk_size;
  std::atomic<u64> cursor{0};
  const unsigned tasks = chunk_workers(n, chunk_size);
  const auto drain_cursor = [&cursor, &fn, n, nchunks, chunk_size](unsigned w) {
    for (;;) {
      const u64 c = cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= nchunks) return;
      const u64 begin = c * chunk_size;
      fn(begin, std::min(n, begin + chunk_size), w);
    }
  };
  Latch latch;
  latch.remaining = tasks;
  unsigned queued = 0;
  for (unsigned w = 0; w < tasks; ++w) {
    // &cursor / &latch / &fn outlive the tasks: latch.wait() below blocks
    // until every queued task has drained the cursor and arrived.
    if (submit([&drain_cursor, &latch, w] {
          drain_cursor(w);
          latch.arrive();
        })) {
      ++queued;
    } else {
      // Stopped pool: the caller's thread finishes the remaining chunks.
      drain_cursor(w);
      latch.arrive();
    }
  }
  if (queued > 0) latch.wait();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace vscrub
