#include "common/thread_pool.h"

#include <algorithm>

namespace vscrub {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(u64 n,
                              const std::function<void(u64, u64)>& fn) {
  if (n == 0) return;
  const u64 shards = std::min<u64>(n, thread_count());
  const u64 chunk = (n + shards - 1) / shards;
  for (u64 s = 0; s < shards; ++s) {
    const u64 begin = s * chunk;
    const u64 end = std::min(n, begin + chunk);
    if (begin >= end) break;
    submit([&fn, begin, end] { fn(begin, end); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace vscrub
