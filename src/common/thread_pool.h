// Minimal work-stealing-free thread pool for injection campaigns. Campaigns
// shard the configuration-bit space statically; the pool just runs the
// shards. Falls back to inline execution when hardware_concurrency() == 1.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/types.h"

namespace vscrub {

class ThreadPool {
 public:
  /// `threads == 0` means hardware concurrency.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task. Tasks must not throw; wrap your own error channel.
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void wait_idle();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Each worker processes a contiguous shard for cache friendliness.
  void parallel_for(u64 n, const std::function<void(u64 begin, u64 end)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  u64 in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace vscrub
