// Minimal work-stealing-free thread pool for injection campaigns. The
// campaign engine pulls fixed-size chunks from a shared cursor
// (parallel_chunks); parallel_for keeps the legacy static sharding for
// workloads with uniform per-item cost.
//
// Since the serving layer landed, one pool is shared by concurrent
// campaigns: parallel_for/parallel_chunks wait on a per-call completion
// latch, not on the pool going globally idle, so two callers interleave
// their chunks fairly instead of each blocking until the other drains.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/types.h"

namespace vscrub {

class ThreadPool {
 public:
  /// `threads == 0` means hardware concurrency.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task. Tasks must not throw; wrap your own error channel.
  /// Returns false — with a logged warning, and without enqueuing — when the
  /// pool is shutting down or already shut down: a daemon draining while
  /// clients are still submitting must never race the destructor.
  bool submit(std::function<void()> task);

  /// Stops accepting work, runs every already-queued task, and joins the
  /// workers. Idempotent; called by the destructor.
  void shutdown();

  /// True once shutdown() has begun; submit() will refuse new work.
  bool stopping() const;

  /// Blocks until all submitted tasks have finished.
  void wait_idle();

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Each worker processes a contiguous shard for cache friendliness.
  /// Safe to call from several threads at once: each call waits only for its
  /// own shards. On a stopped pool the work runs inline on the caller.
  void parallel_for(u64 n, const std::function<void(u64 begin, u64 end)>& fn);

  /// Chunked work-queue scheduling: [0, n) is cut into `chunk_size`-sized
  /// ranges and workers claim the next unclaimed chunk from a shared atomic
  /// cursor until none remain. Unlike parallel_for's static shards, a chunk
  /// that happens to be expensive (a column dense with sensitive routing
  /// bits) delays only its own worker — everyone else keeps pulling.
  /// `worker` identifies the claiming task, 0 <= worker < chunk_workers(n,
  /// chunk_size), so callers can keep per-worker scratch state.
  /// Safe to call concurrently from several threads (each call waits on its
  /// own latch); on a stopped pool the chunks run inline on the caller.
  void parallel_chunks(
      u64 n, u64 chunk_size,
      const std::function<void(u64 begin, u64 end, unsigned worker)>& fn);

  /// Number of worker tasks parallel_chunks(n, chunk_size, ...) will spawn.
  unsigned chunk_workers(u64 n, u64 chunk_size) const;

 private:
  /// Per-call completion latch for the parallel_* helpers.
  struct Latch {
    std::mutex mutex;
    std::condition_variable cv;
    unsigned remaining = 0;

    void arrive() {
      std::lock_guard lock(mutex);
      if (--remaining == 0) cv.notify_all();
    }
    void wait() {
      std::unique_lock lock(mutex);
      cv.wait(lock, [this] { return remaining == 0; });
    }
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  u64 in_flight_ = 0;
  bool stop_ = false;
  bool joined_ = false;
};

}  // namespace vscrub
