// Dense dynamic bit vector used for configuration frames and bitstreams.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace vscrub {

/// A packed vector of bits with word-level access, the backing store for
/// configuration frames and whole-device bitstreams. Unlike
/// std::vector<bool> it exposes its words (for CRC/ECC and fast diffing) and
/// guarantees bit order: bit i lives in word i/64 at position i%64.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t nbits, bool fill = false);

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i, bool v) {
    const u64 mask = u64{1} << (i & 63);
    if (v) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }
  void flip(std::size_t i) { words_[i >> 6] ^= u64{1} << (i & 63); }

  /// Reads up to 64 bits starting at bit offset `i` (LSB-first).
  u64 word_at(std::size_t i, unsigned nbits) const;
  /// Writes the low `nbits` of `value` starting at bit offset `i`.
  void set_word_at(std::size_t i, unsigned nbits, u64 value);

  void fill(bool v);
  void resize(std::size_t nbits, bool fill = false);

  /// Number of set bits.
  std::size_t popcount() const;
  /// Index of first difference with `other`, or size() if equal.
  std::size_t first_difference(const BitVector& other) const;
  /// Total differing bits vs `other` (sizes must match).
  std::size_t hamming_distance(const BitVector& other) const;

  const std::vector<u64>& words() const { return words_; }
  std::vector<u64>& words() { return words_; }

  /// Serializes to bytes, LSB-first within each byte; the trailing partial
  /// byte (if any) is zero-padded. This is the wire format used by the
  /// SelectMAP port model and the CRC codebook.
  std::vector<u8> to_bytes() const;
  static BitVector from_bytes(const std::vector<u8>& bytes, std::size_t nbits);

  bool operator==(const BitVector& other) const;

 private:
  std::size_t nbits_ = 0;
  std::vector<u64> words_;
  void mask_tail();
};

}  // namespace vscrub
