// JSONL event trace: an append-only in-memory log of simulation events
// (scrub detections, repairs, escalations, mission upsets), one compact JSON
// object per line. Lines are built deterministically — modeled SimTime only,
// fields in emission order, integers exact — so two runs with the same seed
// produce byte-identical traces, which the fleet determinism tests assert.
//
// Usage (fluent; the line is sealed when the Event temporary dies):
//
//   trace.event("scrub_repair", now).f("frame", gf).f("attempts", 2);
//   trace.write_jsonl("mission_trace.jsonl");
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace vscrub {

class EventTrace {
 public:
  class Event {
   public:
    Event(EventTrace* trace, const char* type, SimTime at);
    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;
    ~Event();

    Event& f(const char* key, u64 v);
    Event& f(const char* key, u32 v) { return f(key, static_cast<u64>(v)); }
    Event& f(const char* key, double v);
    Event& f(const char* key, const char* v);

   private:
    EventTrace* trace_;
    std::string line_;
  };

  /// Starts one event line stamped with the modeled time (integer
  /// picoseconds, so traces never depend on float formatting).
  Event event(const char* type, SimTime at) { return Event(this, type, at); }

  std::size_t size() const { return lines_.size(); }
  const std::vector<std::string>& lines() const { return lines_; }
  /// Every line joined with '\n' terminators — the exact bytes write_jsonl
  /// emits; determinism tests compare this string.
  std::string joined() const;
  void clear() { lines_.clear(); }

  /// Writes one JSON object per line. Returns false (warning on stderr) when
  /// the file cannot be written.
  bool write_jsonl(const std::string& path) const;

 private:
  friend class Event;
  std::vector<std::string> lines_;
};

}  // namespace vscrub
