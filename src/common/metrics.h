// Lightweight observability layer: a registry of named counters, gauges and
// histograms that the scrubber, the mission simulator and the fleet runner
// populate as they go. Everything is deterministic (insertion-ordered, no
// wall-clock reads) so metric output can be compared byte-for-byte in the
// determinism tests, and the whole registry serializes to the same flat JSON
// shape the bench artifacts (BENCH_*.json) use.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace vscrub {

/// Monotonic event counter.
class Counter {
 public:
  void add(u64 n = 1) { value_ += n; }
  u64 value() const { return value_; }

 private:
  u64 value_ = 0;
};

/// Sample accumulator with exact percentiles (keeps every sample; the
/// workloads recording into it — per-detection latencies, per-pass costs —
/// are small enough that a sketch would be premature).
class Histogram {
 public:
  void record(double v);
  u64 count() const { return static_cast<u64>(samples_.size()); }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;
  /// Nearest-rank percentile, p in [0, 100]. 0 when empty.
  double percentile(double p) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

/// Insertion-ordered name -> metric registry. Lookup is linear: registries
/// hold tens of metrics and are touched far from any hot loop.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);
  void set_gauge(const std::string& name, double value);

  /// The registry flattened to ordered (name, value) pairs: counters and
  /// gauges verbatim, each histogram expanded to name_count/name_mean/
  /// name_p50/name_p99. Serialization itself lives in report/json
  /// (JsonReport::add_metrics): one JSON emitter for every artifact.
  std::vector<std::pair<std::string, double>> flattened() const;

 private:
  std::vector<std::pair<std::string, Counter>> counters_;
  std::vector<std::pair<std::string, Histogram>> histograms_;
  std::vector<std::pair<std::string, double>> gauges_;
};

}  // namespace vscrub
