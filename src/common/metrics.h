// Lightweight observability layer: a registry of named counters, gauges and
// histograms that the scrubber, the mission simulator, the fleet runner and
// the campaign service populate as they go. Everything is deterministic
// (insertion-ordered, no wall-clock reads) so metric output can be compared
// byte-for-byte in the determinism tests, and the whole registry serializes
// to the same flat JSON shape the bench artifacts (BENCH_*.json) use.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace vscrub {

/// Monotonic event counter.
class Counter {
 public:
  void add(u64 n = 1) { value_ += n; }
  u64 value() const { return value_; }

 private:
  u64 value_ = 0;
};

/// Sample accumulator with percentiles. By default it keeps every sample —
/// exact percentiles, fine for bounded workloads (per-detection latencies,
/// per-pass costs). A long-lived daemon recording request latencies forever
/// must not grow without bound: set_reservoir(cap, seed) switches to
/// deterministic reservoir sampling (Algorithm R over the seeded common/rng
/// stream) — count/sum/mean/min/max stay exact, percentiles come from the
/// reservoir and are exact until the cap is first exceeded.
class Histogram {
 public:
  void record(double v);
  u64 count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;
  /// Nearest-rank percentile, p in [0, 100]. 0 when empty.
  double percentile(double p) const;

  /// Bounds the sample buffer to `cap` entries via deterministic reservoir
  /// sampling. Call before recording; a cap of 0 restores keep-everything.
  void set_reservoir(u64 cap, u64 seed = 0x5EEDCAFEULL);
  u64 reservoir_cap() const { return reservoir_cap_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  u64 count_ = 0;
  u64 reservoir_cap_ = 0;  ///< 0 = unbounded (keep every sample)
  Rng reservoir_rng_{0x5EEDCAFEULL};
};

/// Insertion-ordered name -> metric registry. Lookup is linear: registries
/// hold tens of metrics and are touched far from any hot loop.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);
  /// Creates (or finds) a histogram and, on first creation, bounds it to a
  /// deterministic reservoir of `reservoir_cap` samples — the form the
  /// campaign service uses for its request-latency series.
  Histogram& histogram(const std::string& name, u64 reservoir_cap);
  void set_gauge(const std::string& name, double value);

  /// The registry flattened to ordered (name, value) pairs: counters and
  /// gauges verbatim, each histogram expanded to name_count/name_mean/
  /// name_p50/name_p99. Serialization itself lives in report/json
  /// (JsonReport::add_metrics): one JSON emitter for every artifact.
  std::vector<std::pair<std::string, double>> flattened() const;

 private:
  std::vector<std::pair<std::string, Counter>> counters_;
  std::vector<std::pair<std::string, Histogram>> histograms_;
  std::vector<std::pair<std::string, double>> gauges_;
};

}  // namespace vscrub
