// Hamming(72,64) SECDED codec. The paper's flash memory module uses error
// control coding "to mitigate SEUs that might occur while the memory is
// being accessed"; we protect each 64-bit flash word with 8 check bits
// (single-error correct, double-error detect).
#pragma once

#include "common/types.h"

namespace vscrub {

struct EccWord {
  u64 data = 0;
  u8 check = 0;  ///< 7 Hamming parity bits + 1 overall parity bit.
};

enum class EccStatus : u8 {
  kClean,             ///< No error detected.
  kCorrectedData,     ///< Single-bit error in the data, corrected.
  kCorrectedCheck,    ///< Single-bit error in the check bits, corrected.
  kUncorrectable,     ///< Double-bit (or worse) error detected.
};

struct EccDecodeResult {
  u64 data = 0;
  EccStatus status = EccStatus::kClean;
};

/// Encodes 64 data bits into an EccWord.
EccWord ecc_encode(u64 data);

/// Decodes (and corrects if possible) a possibly-corrupted word.
EccDecodeResult ecc_decode(const EccWord& word);

}  // namespace vscrub
