#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace vscrub {

void Histogram::record(double v) {
  if (!samples_.empty() && v < samples_.back()) sorted_ = false;
  samples_.push_back(v);
  sum_ += v;
}

double Histogram::mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Histogram::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  // Nearest-rank: the smallest sample with at least p% of the mass below it.
  const double clamped = std::clamp(p, 0.0, 100.0);
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

Counter& MetricsRegistry::counter(const std::string& name) {
  for (auto& [n, c] : counters_) {
    if (n == name) return c;
  }
  counters_.emplace_back(name, Counter{});
  return counters_.back().second;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  for (auto& [n, h] : histograms_) {
    if (n == name) return h;
  }
  histograms_.emplace_back(name, Histogram{});
  return histograms_.back().second;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  for (auto& [n, v] : gauges_) {
    if (n == name) {
      v = value;
      return;
    }
  }
  gauges_.emplace_back(name, value);
}

std::vector<std::pair<std::string, double>> MetricsRegistry::flattened()
    const {
  std::vector<std::pair<std::string, double>> fields;
  for (const auto& [n, c] : counters_) {
    fields.emplace_back(n, static_cast<double>(c.value()));
  }
  for (const auto& [n, v] : gauges_) fields.emplace_back(n, v);
  for (const auto& [n, h] : histograms_) {
    fields.emplace_back(n + "_count", static_cast<double>(h.count()));
    fields.emplace_back(n + "_mean", h.mean());
    fields.emplace_back(n + "_p50", h.percentile(50));
    fields.emplace_back(n + "_p99", h.percentile(99));
  }
  return fields;
}

}  // namespace vscrub
