#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace vscrub {

void Histogram::record(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  if (reservoir_cap_ == 0 || samples_.size() < reservoir_cap_) {
    if (!samples_.empty() && v < samples_.back()) sorted_ = false;
    samples_.push_back(v);
    return;
  }
  // Algorithm R: sample i (0-based, i >= cap) replaces a random reservoir
  // slot with probability cap / (i + 1) — here count_ is already i + 1.
  const u64 j = reservoir_rng_.uniform(count_);
  if (j < reservoir_cap_) {
    samples_[static_cast<std::size_t>(j)] = v;
    sorted_ = false;
  }
}

void Histogram::set_reservoir(u64 cap, u64 seed) {
  reservoir_cap_ = cap;
  reservoir_rng_ = Rng(seed);
  if (cap != 0 && samples_.size() > cap) {
    samples_.resize(static_cast<std::size_t>(cap));
    sorted_ = false;
  }
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::min() const { return count_ == 0 ? 0.0 : min_; }

double Histogram::max() const { return count_ == 0 ? 0.0 : max_; }

double Histogram::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  // Nearest-rank: the smallest sample with at least p% of the mass below it.
  const double clamped = std::clamp(p, 0.0, 100.0);
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

Counter& MetricsRegistry::counter(const std::string& name) {
  for (auto& [n, c] : counters_) {
    if (n == name) return c;
  }
  counters_.emplace_back(name, Counter{});
  return counters_.back().second;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  for (auto& [n, h] : histograms_) {
    if (n == name) return h;
  }
  histograms_.emplace_back(name, Histogram{});
  return histograms_.back().second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      u64 reservoir_cap) {
  for (auto& [n, h] : histograms_) {
    if (n == name) return h;
  }
  histograms_.emplace_back(name, Histogram{});
  Histogram& h = histograms_.back().second;
  h.set_reservoir(reservoir_cap);
  return h;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  for (auto& [n, v] : gauges_) {
    if (n == name) {
      v = value;
      return;
    }
  }
  gauges_.emplace_back(name, value);
}

std::vector<std::pair<std::string, double>> MetricsRegistry::flattened()
    const {
  std::vector<std::pair<std::string, double>> fields;
  for (const auto& [n, c] : counters_) {
    fields.emplace_back(n, static_cast<double>(c.value()));
  }
  for (const auto& [n, v] : gauges_) fields.emplace_back(n, v);
  for (const auto& [n, h] : histograms_) {
    fields.emplace_back(n + "_count", static_cast<double>(h.count()));
    fields.emplace_back(n + "_mean", h.mean());
    fields.emplace_back(n + "_p50", h.percentile(50));
    fields.emplace_back(n + "_p99", h.percentile(99));
  }
  return fields;
}

}  // namespace vscrub
