#include "common/ecc.h"

#include <array>

namespace vscrub {
namespace {

// Extended Hamming code over 72 bit positions 1..72 (position 0 unused).
// Positions that are powers of two hold parity bits p1..p64... we only need
// 7 parity bits to cover 71 positions; position 72 holds the overall parity.
// Layout: codeword[1..72]; data bits fill the non-power-of-two positions
// 3,5,6,7,9,... in increasing order.

constexpr int kCodeBits = 72;

bool is_pow2(int x) { return (x & (x - 1)) == 0; }

// Maps data bit index 0..63 -> codeword position.
int data_position(int i) {
  static const auto table = [] {
    std::array<int, 64> t{};
    int idx = 0;
    for (int pos = 1; pos <= kCodeBits - 1 && idx < 64; ++pos) {
      if (!is_pow2(pos)) t[static_cast<std::size_t>(idx++)] = pos;
    }
    return t;
  }();
  return table[static_cast<std::size_t>(i)];
}

}  // namespace

EccWord ecc_encode(u64 data) {
  bool code[kCodeBits + 1] = {};
  for (int i = 0; i < 64; ++i) {
    code[data_position(i)] = (data >> i) & 1;
  }
  // Hamming parity bits at power-of-two positions (1,2,4,...,64).
  for (int p = 1; p <= 64; p <<= 1) {
    bool parity = false;
    for (int pos = 1; pos <= kCodeBits - 1; ++pos) {
      if ((pos & p) != 0 && pos != p) parity ^= code[pos];
    }
    code[p] = parity;
  }
  // Overall parity covers positions 1..71 and lives at position 72.
  bool overall = false;
  for (int pos = 1; pos <= kCodeBits - 1; ++pos) overall ^= code[pos];
  code[kCodeBits] = overall;

  EccWord w;
  w.data = data;
  u8 check = 0;
  int bit = 0;
  for (int p = 1; p <= 64; p <<= 1) {
    check |= static_cast<u8>(code[p] ? (1u << bit) : 0u);
    ++bit;
  }
  check |= static_cast<u8>(code[kCodeBits] ? (1u << bit) : 0u);
  w.check = check;
  return w;
}

EccDecodeResult ecc_decode(const EccWord& word) {
  bool code[kCodeBits + 1] = {};
  for (int i = 0; i < 64; ++i) {
    code[data_position(i)] = (word.data >> i) & 1;
  }
  int bit = 0;
  for (int p = 1; p <= 64; p <<= 1) {
    code[p] = (word.check >> bit) & 1;
    ++bit;
  }
  code[kCodeBits] = (word.check >> bit) & 1;

  // Syndrome: XOR of positions with wrong parity.
  int syndrome = 0;
  for (int p = 1; p <= 64; p <<= 1) {
    bool parity = false;
    for (int pos = 1; pos <= kCodeBits - 1; ++pos) {
      if ((pos & p) != 0) parity ^= code[pos];
    }
    if (parity) syndrome |= p;
  }
  bool overall = false;
  for (int pos = 1; pos <= kCodeBits; ++pos) overall ^= code[pos];

  EccDecodeResult result;
  result.data = word.data;
  if (syndrome == 0 && !overall) {
    result.status = EccStatus::kClean;
    return result;
  }
  if (syndrome != 0 && overall) {
    // Single-bit error at `syndrome` (or at the overall-parity bit itself if
    // syndrome points past the data region).
    if (syndrome <= kCodeBits - 1) {
      code[syndrome] = !code[syndrome];
      if (is_pow2(syndrome)) {
        result.status = EccStatus::kCorrectedCheck;
      } else {
        result.status = EccStatus::kCorrectedData;
        u64 data = 0;
        for (int i = 0; i < 64; ++i) {
          if (code[data_position(i)]) data |= u64{1} << i;
        }
        result.data = data;
      }
    } else {
      result.status = EccStatus::kUncorrectable;
    }
    return result;
  }
  if (syndrome == 0 && overall) {
    // Error in the overall parity bit only; data is intact.
    result.status = EccStatus::kCorrectedCheck;
    return result;
  }
  // syndrome != 0 && !overall: double error.
  result.status = EccStatus::kUncorrectable;
  return result;
}

}  // namespace vscrub
