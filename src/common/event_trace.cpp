#include "common/event_trace.h"

#include <cstdio>

namespace vscrub {

EventTrace::Event::Event(EventTrace* trace, const char* type, SimTime at)
    : trace_(trace) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "{\"ev\":\"%s\",\"t_ps\":%lld", type,
                static_cast<long long>(at.ps()));
  line_ = buf;
}

EventTrace::Event::~Event() {
  line_ += '}';
  trace_->lines_.push_back(std::move(line_));
}

EventTrace::Event& EventTrace::Event::f(const char* key, u64 v) {
  char buf[96];
  std::snprintf(buf, sizeof buf, ",\"%s\":%llu", key,
                static_cast<unsigned long long>(v));
  line_ += buf;
  return *this;
}

EventTrace::Event& EventTrace::Event::f(const char* key, double v) {
  char buf[96];
  std::snprintf(buf, sizeof buf, ",\"%s\":%.17g", key, v);
  line_ += buf;
  return *this;
}

EventTrace::Event& EventTrace::Event::f(const char* key, const char* v) {
  line_ += ",\"";
  line_ += key;
  line_ += "\":\"";
  line_ += v;
  line_ += '"';
  return *this;
}

std::string EventTrace::joined() const {
  std::string out;
  for (const std::string& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

bool EventTrace::write_jsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace: cannot write %s\n", path.c_str());
    return false;
  }
  const std::string out = joined();
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  return ok;
}

}  // namespace vscrub
