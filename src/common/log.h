// Tiny leveled logger. Mission simulations emit a lot of events; tests keep
// the level at kWarn to stay quiet.
#pragma once

#include <sstream>
#include <string>

#include "common/types.h"

namespace vscrub {

enum class LogLevel : u8 { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();
void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string format_parts(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}
}  // namespace detail

#define VSCRUB_LOG(level, ...)                                              \
  do {                                                                      \
    if (static_cast<int>(level) >= static_cast<int>(::vscrub::log_level())) \
      ::vscrub::log_message(level, ::vscrub::detail::format_parts(__VA_ARGS__)); \
  } while (false)

#define VSCRUB_DEBUG(...) VSCRUB_LOG(::vscrub::LogLevel::kDebug, __VA_ARGS__)
#define VSCRUB_INFO(...) VSCRUB_LOG(::vscrub::LogLevel::kInfo, __VA_ARGS__)
#define VSCRUB_WARN(...) VSCRUB_LOG(::vscrub::LogLevel::kWarn, __VA_ARGS__)
#define VSCRUB_ERROR(...) VSCRUB_LOG(::vscrub::LogLevel::kError, __VA_ARGS__)

}  // namespace vscrub
