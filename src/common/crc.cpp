#include "common/crc.h"

#include <array>

namespace vscrub {
namespace {

std::array<u32, 256> make_crc32_table() {
  std::array<u32, 256> table{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<u32, 256>& crc32_table() {
  static const std::array<u32, 256> table = make_crc32_table();
  return table;
}

}  // namespace

u16 crc16_ccitt(std::span<const u8> data) {
  u16 crc = 0xFFFF;
  for (u8 byte : data) {
    crc ^= static_cast<u16>(byte << 8);
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 0x8000) ? static_cast<u16>((crc << 1) ^ 0x1021)
                           : static_cast<u16>(crc << 1);
    }
  }
  return crc;
}

u32 crc32_init() { return 0xFFFFFFFFu; }

u32 crc32_update(u32 state, std::span<const u8> data) {
  const auto& table = crc32_table();
  for (u8 byte : data) {
    state = table[(state ^ byte) & 0xFF] ^ (state >> 8);
  }
  return state;
}

u32 crc32_final(u32 state) { return state ^ 0xFFFFFFFFu; }

u32 crc32(std::span<const u8> data) {
  return crc32_final(crc32_update(crc32_init(), data));
}

}  // namespace vscrub
