#include "scrub/flash.h"

namespace vscrub {

FlashStore::FlashStore(const Bitstream& image, const FlashFaultModel& faults)
    : faults_(faults), rng_(faults.seed) {
  frame_words_.reserve(image.frame_count());
  for (u32 gf = 0; gf < image.frame_count(); ++gf) {
    const BitVector& frame = image.frame(gf);
    StoredFrame stored;
    stored.bits = static_cast<u32>(frame.size());
    const std::size_t nwords = (frame.size() + 63) / 64;
    stored.words.reserve(nwords);
    for (std::size_t w = 0; w < nwords; ++w) {
      const std::size_t bit = w * 64;
      const unsigned n =
          static_cast<unsigned>(std::min<std::size_t>(64, frame.size() - bit));
      stored.words.push_back(ecc_encode(frame.word_at(bit, n)));
    }
    total_words_ += stored.words.size();
    frame_words_.push_back(std::move(stored));
  }
}

BitVector FlashStore::fetch_frame(u32 global_frame, FetchStatus* status) {
  StoredFrame& stored = frame_words_[global_frame];
  BitVector frame(stored.bits);
  if (status != nullptr) *status = FetchStatus{};
  for (std::size_t w = 0; w < stored.words.size(); ++w) {
    ++stats_.reads;
    if (faults_.enabled()) {
      // Radiation since the last scrub of this word: flip one stored bit, or
      // two distinct ones for a (much rarer) uncorrectable event.
      if (rng_.bernoulli(faults_.word_upset_prob)) {
        inject_upset(global_frame, static_cast<u32>(w),
                     static_cast<u32>(rng_.uniform(72)));
      }
      if (rng_.bernoulli(faults_.word_double_upset_prob)) {
        const u32 a = static_cast<u32>(rng_.uniform(72));
        u32 b = static_cast<u32>(rng_.uniform(71));
        if (b >= a) ++b;
        inject_upset(global_frame, static_cast<u32>(w), a);
        inject_upset(global_frame, static_cast<u32>(w), b);
      }
    }
    const EccDecodeResult r = ecc_decode(stored.words[w]);
    switch (r.status) {
      case EccStatus::kClean:
        break;
      case EccStatus::kCorrectedData:
      case EccStatus::kCorrectedCheck:
        ++stats_.corrected;
        if (status != nullptr) ++status->corrected;
        // Scrub the stored copy so the correction sticks.
        stored.words[w] = ecc_encode(r.data);
        break;
      case EccStatus::kUncorrectable:
        ++stats_.uncorrectable;
        if (status != nullptr) ++status->uncorrectable;
        break;
    }
    const std::size_t bit = w * 64;
    const unsigned n =
        static_cast<unsigned>(std::min<std::size_t>(64, stored.bits - bit));
    frame.set_word_at(bit, n, r.data);
  }
  return frame;
}

void FlashStore::inject_upset(u32 global_frame, u32 word_in_frame, u32 bit) {
  EccWord& w = frame_words_[global_frame].words[word_in_frame];
  if (bit < 64) {
    w.data ^= u64{1} << bit;
  } else {
    w.check ^= static_cast<u8>(1u << (bit - 64));
  }
}

}  // namespace vscrub
