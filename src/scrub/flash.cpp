#include "scrub/flash.h"

namespace vscrub {

FlashStore::FlashStore(const Bitstream& image) {
  frame_words_.reserve(image.frame_count());
  for (u32 gf = 0; gf < image.frame_count(); ++gf) {
    const BitVector& frame = image.frame(gf);
    StoredFrame stored;
    stored.bits = static_cast<u32>(frame.size());
    const std::size_t nwords = (frame.size() + 63) / 64;
    stored.words.reserve(nwords);
    for (std::size_t w = 0; w < nwords; ++w) {
      const std::size_t bit = w * 64;
      const unsigned n =
          static_cast<unsigned>(std::min<std::size_t>(64, frame.size() - bit));
      stored.words.push_back(ecc_encode(frame.word_at(bit, n)));
    }
    total_words_ += stored.words.size();
    frame_words_.push_back(std::move(stored));
  }
}

BitVector FlashStore::fetch_frame(u32 global_frame) {
  StoredFrame& stored = frame_words_[global_frame];
  BitVector frame(stored.bits);
  for (std::size_t w = 0; w < stored.words.size(); ++w) {
    ++stats_.reads;
    const EccDecodeResult r = ecc_decode(stored.words[w]);
    switch (r.status) {
      case EccStatus::kClean:
        break;
      case EccStatus::kCorrectedData:
      case EccStatus::kCorrectedCheck:
        ++stats_.corrected;
        // Scrub the stored copy so the correction sticks.
        stored.words[w] = ecc_encode(r.data);
        break;
      case EccStatus::kUncorrectable:
        ++stats_.uncorrectable;
        break;
    }
    const std::size_t bit = w * 64;
    const unsigned n =
        static_cast<unsigned>(std::min<std::size_t>(64, stored.bits - bit));
    frame.set_word_at(bit, n, r.data);
  }
  return frame;
}

void FlashStore::inject_upset(u32 global_frame, u32 word_in_frame, u32 bit) {
  EccWord& w = frame_words_[global_frame].words[word_in_frame];
  if (bit < 64) {
    w.data ^= u64{1} << bit;
  } else {
    w.check ^= static_cast<u8>(1u << (bit - 64));
  }
}

}  // namespace vscrub
