#include "scrub/scrubber.h"

#include <algorithm>

#include "common/log.h"

namespace vscrub {

void validate_scrub_options(const ScrubberOptions& options) {
  const ScrubPolicy& policy =
      options.policy ? *options.policy : *default_scrub_policy();
  if (policy.blind()) {
    if (options.repair_mode != RepairMode::kGoldenOverwrite) {
      throw ScrubConfigError(
          std::string("scrub policy '") + policy.name() +
          "' repairs without readback and cannot use repair mode '" +
          repair_mode_name(options.repair_mode) +
          "' (read-modify-write and bit-granular repair need readback data)");
    }
    if (!options.mask_dynamic_frames) {
      throw ScrubConfigError(
          std::string("scrub policy '") + policy.name() +
          "' requires mask_dynamic_frames: a blind golden rewrite through an "
          "unmasked frame would clobber live dynamic LUT state");
    }
    if (options.zeroed_dynamic_codebook) {
      throw ScrubConfigError(
          std::string("scrub policy '") + policy.name() +
          "' is incompatible with zeroed_dynamic_codebook: the zeroed "
          "variant checks dynamic frames instead of masking them, but a "
          "blind write would overwrite their live contents");
    }
  }
}

Scrubber::Scrubber(const PlacedDesign& design, FabricSim& sim,
                   FlashStore& flash, const ScrubberOptions& options)
    : design_(&design),
      sim_(&sim),
      flash_(&flash),
      options_(options),
      policy_(options.policy ? options.policy : default_scrub_policy()),
      codebook_([&] {
        if (!options.zeroed_dynamic_codebook) return CrcCodebook(design.bitstream);
        // §IV-A variant: build the codebook against the golden image with
        // dynamic LUT locations zeroed, matching the device's readback.
        Bitstream zeroed = design.bitstream;
        for (const LutSiteRef& site : design.dynamic_lut_sites) {
          zeroed.set_lut_truth(site.tile, site.lut, 0);
        }
        return CrcCodebook(zeroed);
      }()),
      port_(design.space.get(), options.timing, options.link_faults) {
  validate_scrub_options(options_);
  if (policy_->golden_ecc()) {
    // Second golden tier: a SECDED shadow of every frame, encoded once at
    // construction (the mission's one-time golden upload). Decoded only on
    // a flash ECC event, so the common path costs nothing.
    const ConfigSpace& space = *design_->space;
    ecc_shadow_.resize(space.frame_count());
    for (u32 gf = 0; gf < space.frame_count(); ++gf) {
      const BitVector& frame = design_->bitstream.frame(gf);
      std::vector<EccWord>& words = ecc_shadow_[gf];
      words.reserve((frame.size() + 63) / 64);
      for (std::size_t bit = 0; bit < frame.size(); bit += 64) {
        const unsigned nbits =
            static_cast<unsigned>(std::min<std::size_t>(64, frame.size() - bit));
        words.push_back(ecc_encode(frame.word_at(bit, nbits)));
      }
    }
  }
  if (options_.zeroed_dynamic_codebook) {
    // Only BRAM columns stay unreadable; every CLB frame is checkable.
    const ConfigSpace& space = *design_->space;
    for (u16 col = 0; col < space.geometry().bram_columns; ++col) {
      for (u16 f = 0; f < kBramFramesPerColumn; ++f) {
        codebook_.mask_frame(
            space.global_frame_index(FrameAddress{ColumnKind::kBram, col, f}));
      }
    }
  } else if (options_.mask_dynamic_frames) {
    const ConfigSpace& space = *design_->space;
    for (const LutSiteRef& site : design_->dynamic_lut_sites) {
      const int slice = site.lut / kLutsPerSlice;
      for (int j = 0; j < kLutTruthBits; ++j) {
        const FrameAddress fa{ColumnKind::kClb, site.tile.col,
                              static_cast<u16>(slice * kLutTruthBits + j)};
        codebook_.mask_frame(space.global_frame_index(fa));
      }
    }
    // BRAM columns cannot be read back reliably while the design runs
    // (paper §II-C): mask them wholesale; their protection is ECC or
    // design-level checks.
    for (u16 col = 0; col < space.geometry().bram_columns; ++col) {
      for (u16 f = 0; f < kBramFramesPerColumn; ++f) {
        codebook_.mask_frame(
            space.global_frame_index(FrameAddress{ColumnKind::kBram, col, f}));
      }
    }
  }
}

SimTime Scrubber::clean_pass_cost() const { return port_.full_readback_cost(); }

void Scrubber::advance_design(DesignHarness* harness, SimTime dt) {
  elapsed_ += dt;
  if (!harness) return;
  cycle_debt_ += dt.sec() * options_.clock_hz;
  u32 steps = 0;
  while (cycle_debt_ >= 1.0 && steps < options_.max_sim_cycles_per_frame) {
    harness->step();
    cycle_debt_ -= 1.0;
    ++steps;
  }
  // Any remaining debt is dropped: the modeled clock keeps exact time, the
  // simulated activity is just subsampled.
  cycle_debt_ = std::min(cycle_debt_, 1.0);
}

void Scrubber::issue_reset(DesignHarness* harness, ScrubPassResult& result,
                           ScrubEvent& event) {
  if (harness) {
    harness->restart();
  } else {
    sim_->reset();
  }
  event.reset_issued = true;
  ++result.resets;
}

bool Scrubber::read_with_link(const FrameAddress& fa, bool primary,
                              DesignHarness* harness, ScrubPassResult& result,
                              BitVector* data) {
  const TransferResult tr = port_.transfer(fa);
  advance_design(harness, tr.cost);
  // On success the first attempt was clean unless retried (attempts - 1
  // timeouts); on exhaustion every attempt timed out.
  result.transfer_timeouts += tr.ok ? tr.attempts - 1 : tr.attempts;
  // A primary read's ideal cost is part of clean_cost; only the excess is
  // fault overhead. Extra fault-path reads are overhead entirely.
  result.fault_overhead += primary ? tr.cost - port_.frame_cost(fa) : tr.cost;
  if (!tr.ok) {
    ++result.retries_exhausted;
    return false;
  }
  if (data != nullptr) {
    *data = sim_->read_frame(fa, /*clock_running=*/true);
    port_.corrupt_readback(*data);
  }
  return true;
}

bool Scrubber::golden_from_shadow(u32 gf, BitVector& golden,
                                  ScrubPassResult& result) {
  if (ecc_shadow_.empty()) return false;
  BitVector shadow(golden.size());
  std::size_t bit = 0;
  for (const EccWord& word : ecc_shadow_[gf]) {
    const EccDecodeResult decoded = ecc_decode(word);
    if (decoded.status == EccStatus::kUncorrectable) return false;
    const unsigned nbits =
        static_cast<unsigned>(std::min<std::size_t>(64, shadow.size() - bit));
    shadow.set_word_at(bit, nbits, decoded.data);
    bit += nbits;
  }
  golden = std::move(shadow);
  ++result.ecc_fallback_repairs;
  if (options_.trace) {
    options_.trace->event("scrub_ecc_fallback", elapsed_).f("frame", gf);
  }
  return true;
}

void Scrubber::visit_readback(u32 gf, const FrameAddress& fa,
                              DesignHarness* harness, ScrubPassResult& result) {
  const bool faulty = options_.link_faults.enabled();
  const bool masked = codebook_.is_masked(gf);
  ++result.frames_checked;
  result.clean_cost += port_.frame_cost(fa);
  BitVector data;
  if (!read_with_link(fa, /*primary=*/true, harness, result,
                      masked ? nullptr : &data)) {
    // Retry/backoff exhausted: this frame cannot be read, so its state is
    // unknown; for a checkable frame that is escalated to a reset.
    if (!masked) {
      ScrubEvent event;
      event.global_frame = gf;
      event.time = elapsed_;
      ++result.escalations;
      if (options_.trace) {
        options_.trace->event("scrub_link_exhausted", elapsed_).f("frame", gf);
      }
      issue_reset(harness, result, event);
      result.events.push_back(event);
    }
    return;
  }
  if (masked) return;
  if (codebook_.check(gf, data)) return;

  if (faulty && options_.crc_confirm_rereads > 0) {
    // A CRC mismatch may be noise in the readback path, not a real config
    // upset. Repair only once two consecutive readbacks agree bit-for-bit
    // and still fail CRC; anything else is a false alarm (a real upset
    // drowned in noise is caught on the next pass).
    bool confirmed = false;
    bool link_dead = false;
    for (u32 i = 0; i < options_.crc_confirm_rereads; ++i) {
      BitVector again;
      if (!read_with_link(fa, /*primary=*/false, harness, result, &again)) {
        link_dead = true;
        break;
      }
      if (codebook_.check(gf, again)) break;  // earlier read was noise
      if (again == data) {
        confirmed = true;
        break;
      }
      data = std::move(again);
    }
    if (link_dead) {
      ScrubEvent event;
      event.global_frame = gf;
      event.time = elapsed_;
      ++result.escalations;
      if (options_.trace) {
        options_.trace->event("scrub_link_exhausted", elapsed_).f("frame", gf);
      }
      issue_reset(harness, result, event);
      result.events.push_back(event);
      return;
    }
    if (!confirmed) {
      ++result.false_alarms;
      if (options_.trace) {
        options_.trace->event("scrub_false_alarm", elapsed_).f("frame", gf);
      }
      return;
    }
  }

  // Confirmed error: interrupt the microprocessor with (device, frame); it
  // fetches the golden frame from flash and partially reconfigures.
  ++result.errors_found;
  ++total_errors_;
  ScrubEvent event;
  event.global_frame = gf;
  event.time = elapsed_;
  advance_design(harness, options_.error_handling_overhead);

  FlashStore::FetchStatus fetch;
  BitVector golden = flash_->fetch_frame(gf, &fetch);
  // golden_ecc tier: any flash ECC event makes the repair prefer the SECDED
  // shadow copy, so a double-bit flash word costs one shadow decode instead
  // of a reset escalation.
  const bool shadowed =
      (fetch.uncorrectable > 0 || fetch.corrected > 0) &&
      golden_from_shadow(gf, golden, result);
  if (shadowed && fetch.uncorrectable > 0) ++result.flash_uncorrectable;
  if (fetch.uncorrectable > 0 && !shadowed) {
    // §II flash ECC: a double-bit word means the golden copy is not
    // trustworthy — never partially reconfigure with corrupt data.
    // Escalate to a reset and leave the frame for a higher-level recovery
    // (alternate image, ground upload).
    ++result.flash_uncorrectable;
    ++result.escalations;
    if (options_.trace) {
      options_.trace->event("scrub_flash_uncorrectable", elapsed_)
          .f("frame", gf)
          .f("words", fetch.uncorrectable);
    }
    issue_reset(harness, result, event);
    result.events.push_back(event);
    return;
  }

  if (options_.repair_mode == RepairMode::kBitGranular &&
      fa.kind == ColumnKind::kClb) {
    // §IV-B: write only the corrupted bits. Dynamic LUT locations are
    // skipped (their live contents are not errors). Each bit write is a
    // short port transaction.
    const BitVector live = sim_->read_frame(fa);
    u32 writes = 0;
    for (u32 off = 0; off < live.size(); ++off) {
      if (live.get(off) == golden.get(off)) continue;
      bool dynamic_site = false;
      for (const LutSiteRef& site : design_->dynamic_lut_sites) {
        if (site.tile.col != fa.col) continue;
        const int slice = site.lut / kLutsPerSlice;
        if (!ConfigSpace::frame_holds_slice_lut_bits(fa.frame, slice)) continue;
        const u32 site_off =
            static_cast<u32>(site.tile.row) * kBitsPerTilePerFrame +
            static_cast<u32>(site.lut % kLutsPerSlice);
        if (site_off == off) {
          dynamic_site = true;
          break;
        }
      }
      if (dynamic_site) continue;
      sim_->write_config_bit(BitAddress{fa, off}, golden.get(off));
      ++writes;
    }
    advance_design(harness,
                   options_.timing.op_overhead +
                       options_.timing.frame_overhead +
                       options_.timing.byte_time * static_cast<i64>(writes));
    event.repaired = true;
    ++result.repairs;
  } else {
    if (options_.repair_mode == RepairMode::kReadModifyWrite &&
        fa.kind == ColumnKind::kClb) {
      // Read-modify-write: preserve live dynamic LUT contents covered by
      // this frame (paper §IV-B).
      for (const LutSiteRef& site : design_->dynamic_lut_sites) {
        if (site.tile.col != fa.col) continue;
        const int slice = site.lut / kLutsPerSlice;
        if (!ConfigSpace::frame_holds_slice_lut_bits(fa.frame, slice)) continue;
        const u32 offset =
            static_cast<u32>(site.tile.row) * kBitsPerTilePerFrame +
            static_cast<u32>(site.lut % kLutsPerSlice);
        golden.set(offset, data.get(offset));
      }
    }
    // The repair write goes through the same faulty link as readback.
    const TransferResult wr = port_.transfer(fa);
    advance_design(harness, wr.cost);
    result.transfer_timeouts += wr.ok ? wr.attempts - 1 : wr.attempts;
    result.fault_overhead += wr.cost - port_.frame_cost(fa);
    if (!wr.ok) {
      ++result.retries_exhausted;
      ++result.escalations;
      if (options_.trace) {
        options_.trace->event("scrub_link_exhausted", elapsed_).f("frame", gf);
      }
      issue_reset(harness, result, event);
      result.events.push_back(event);
      return;
    }
    sim_->write_frame(fa, golden);
    event.repaired = true;
    ++result.repairs;
  }

  if (faulty && options_.repair_verify_attempts > 0) {
    // Verify-readback: confirm the repair actually landed (the write, or
    // the verify read itself, may have been corrupted in transit). A
    // persistent mismatch escalates to a reset.
    bool verified = false;
    for (u32 attempt = 0; attempt < options_.repair_verify_attempts;
         ++attempt) {
      BitVector check;
      if (!read_with_link(fa, /*primary=*/false, harness, result, &check)) {
        break;
      }
      if (codebook_.check(gf, check)) {
        verified = true;
        break;
      }
      ++result.repair_verify_failures;
      if (attempt + 1 < options_.repair_verify_attempts) {
        const TransferResult wr = port_.transfer(fa);
        advance_design(harness, wr.cost);
        result.transfer_timeouts += wr.ok ? wr.attempts - 1 : wr.attempts;
        result.fault_overhead += wr.cost;
        if (!wr.ok) {
          ++result.retries_exhausted;
          break;
        }
        sim_->write_frame(fa, golden);
      }
    }
    if (!verified) {
      ++result.escalations;
      if (options_.trace) {
        options_.trace->event("scrub_verify_escalation", elapsed_)
            .f("frame", gf);
      }
      issue_reset(harness, result, event);
      result.events.push_back(event);
      return;
    }
  }

  if (options_.trace) {
    options_.trace->event("scrub_repair", elapsed_)
        .f("frame", gf)
        .f("reset", static_cast<u64>(options_.reset_after_repair));
  }
  if (options_.reset_after_repair) issue_reset(harness, result, event);
  result.events.push_back(event);
}

void Scrubber::visit_blind(u32 gf, const FrameAddress& fa,
                           DesignHarness* harness, ScrubPassResult& result) {
  // Masked frames hold live dynamic state (or unreadable BRAM): a blind
  // golden rewrite would clobber them, so they are never visited.
  if (codebook_.is_masked(gf)) return;
  ++result.frames_checked;
  result.clean_cost += port_.frame_cost(fa);
  FlashStore::FetchStatus fetch;
  BitVector golden = flash_->fetch_frame(gf, &fetch);
  ScrubEvent event;
  event.global_frame = gf;
  event.time = elapsed_;
  const bool shadowed =
      (fetch.uncorrectable > 0 || fetch.corrected > 0) &&
      golden_from_shadow(gf, golden, result);
  if (shadowed && fetch.uncorrectable > 0) ++result.flash_uncorrectable;
  if (fetch.uncorrectable > 0 && !shadowed) {
    // Same flash-ECC rule as the readback path: never write corrupt golden
    // data into the fabric.
    ++result.flash_uncorrectable;
    ++result.escalations;
    if (options_.trace) {
      options_.trace->event("scrub_flash_uncorrectable", elapsed_)
          .f("frame", gf)
          .f("words", fetch.uncorrectable);
    }
    issue_reset(harness, result, event);
    result.events.push_back(event);
    return;
  }
  // The scheduled blind write is this frame's primary transfer; like a
  // primary read, its ideal cost is clean time and only the excess is
  // fault overhead.
  const TransferResult wr = port_.transfer(fa);
  advance_design(harness, wr.cost);
  result.transfer_timeouts += wr.ok ? wr.attempts - 1 : wr.attempts;
  result.fault_overhead += wr.cost - port_.frame_cost(fa);
  if (!wr.ok) {
    ++result.retries_exhausted;
    ++result.escalations;
    if (options_.trace) {
      options_.trace->event("scrub_link_exhausted", elapsed_).f("frame", gf);
    }
    issue_reset(harness, result, event);
    result.events.push_back(event);
    return;
  }
  sim_->write_frame(fa, golden);
  ++result.blind_writes;
}

ScrubPassResult Scrubber::scrub_pass(DesignHarness* harness) {
  const ConfigSpace& space = *design_->space;
  ScrubPassResult result;
  const SimTime pass_start = elapsed_;
  ScrubPolicyContext ctx;
  ctx.frame_count = space.frame_count();
  ctx.module_index = options_.module_index;
  ctx.module_count = options_.module_count;
  ctx.pass_index = pass_index_++;
  ctx.frame_sensitivity =
      options_.frame_sensitivity.empty() ? nullptr : &options_.frame_sensitivity;
  policy_->plan_pass(ctx, plan_);
  for (const u32 gf : plan_) {
    const FrameAddress fa = space.frame_of_global(gf);
    switch (policy_->frame_op(ctx, gf)) {
      case FrameOp::kSkip:
        break;
      case FrameOp::kReadbackCheck:
        visit_readback(gf, fa, harness, result);
        break;
      case FrameOp::kBlindWrite:
        visit_blind(gf, fa, harness, result);
        break;
    }
  }
  result.pass_time = elapsed_ - pass_start;
  publish_metrics(result);
  return result;
}

void Scrubber::publish_metrics(const ScrubPassResult& r) {
  if (options_.metrics == nullptr) return;
  MetricsRegistry& m = *options_.metrics;
  m.counter("scrub_frames_checked").add(r.frames_checked);
  m.counter("scrub_errors").add(r.errors_found);
  m.counter("scrub_repairs").add(r.repairs);
  m.counter("scrub_resets").add(r.resets);
  m.counter("scrub_blind_writes").add(r.blind_writes);
  m.counter("scrub_false_alarms").add(r.false_alarms);
  m.counter("scrub_transfer_timeouts").add(r.transfer_timeouts);
  m.counter("scrub_retries_exhausted").add(r.retries_exhausted);
  m.counter("scrub_repair_verify_failures").add(r.repair_verify_failures);
  m.counter("scrub_flash_uncorrectable").add(r.flash_uncorrectable);
  m.counter("scrub_ecc_fallback_repairs").add(r.ecc_fallback_repairs);
  m.counter("scrub_escalations").add(r.escalations);
  m.histogram("scrub_pass_ms").record(r.pass_time.ms());
}

void Scrubber::insert_artificial_seu(const BitAddress& addr) {
  BitVector img = sim_->read_frame(addr.frame);
  img.flip(addr.offset);
  advance_design(nullptr, port_.frame_cost(addr.frame));
  sim_->write_frame(addr.frame, img);
}

}  // namespace vscrub
