#include "scrub/scrubber.h"

#include <algorithm>

#include "common/log.h"

namespace vscrub {

Scrubber::Scrubber(const PlacedDesign& design, FabricSim& sim,
                   FlashStore& flash, const ScrubberOptions& options)
    : design_(&design),
      sim_(&sim),
      flash_(&flash),
      options_(options),
      codebook_([&] {
        if (!options.zeroed_dynamic_codebook) return CrcCodebook(design.bitstream);
        // §IV-A variant: build the codebook against the golden image with
        // dynamic LUT locations zeroed, matching the device's readback.
        Bitstream zeroed = design.bitstream;
        for (const LutSiteRef& site : design.dynamic_lut_sites) {
          zeroed.set_lut_truth(site.tile, site.lut, 0);
        }
        return CrcCodebook(zeroed);
      }()),
      port_(design.space.get(), options.timing) {
  if (options_.zeroed_dynamic_codebook) {
    // Only BRAM columns stay unreadable; every CLB frame is checkable.
    const ConfigSpace& space = *design_->space;
    for (u16 col = 0; col < space.geometry().bram_columns; ++col) {
      for (u16 f = 0; f < kBramFramesPerColumn; ++f) {
        codebook_.mask_frame(
            space.global_frame_index(FrameAddress{ColumnKind::kBram, col, f}));
      }
    }
  } else if (options_.mask_dynamic_frames) {
    const ConfigSpace& space = *design_->space;
    for (const LutSiteRef& site : design_->dynamic_lut_sites) {
      const int slice = site.lut / kLutsPerSlice;
      for (int j = 0; j < kLutTruthBits; ++j) {
        const FrameAddress fa{ColumnKind::kClb, site.tile.col,
                              static_cast<u16>(slice * kLutTruthBits + j)};
        codebook_.mask_frame(space.global_frame_index(fa));
      }
    }
    // BRAM columns cannot be read back reliably while the design runs
    // (paper §II-C): mask them wholesale; their protection is ECC or
    // design-level checks.
    for (u16 col = 0; col < space.geometry().bram_columns; ++col) {
      for (u16 f = 0; f < kBramFramesPerColumn; ++f) {
        codebook_.mask_frame(
            space.global_frame_index(FrameAddress{ColumnKind::kBram, col, f}));
      }
    }
  }
}

SimTime Scrubber::clean_pass_cost() const { return port_.full_readback_cost(); }

void Scrubber::advance_design(DesignHarness* harness, SimTime dt) {
  elapsed_ += dt;
  if (!harness) return;
  cycle_debt_ += dt.sec() * options_.clock_hz;
  u32 steps = 0;
  while (cycle_debt_ >= 1.0 && steps < options_.max_sim_cycles_per_frame) {
    harness->step();
    cycle_debt_ -= 1.0;
    ++steps;
  }
  // Any remaining debt is dropped: the modeled clock keeps exact time, the
  // simulated activity is just subsampled.
  cycle_debt_ = std::min(cycle_debt_, 1.0);
}

ScrubPassResult Scrubber::scrub_pass(DesignHarness* harness) {
  const ConfigSpace& space = *design_->space;
  ScrubPassResult result;
  const SimTime pass_start = elapsed_;
  for (u32 gf = 0; gf < space.frame_count(); ++gf) {
    const FrameAddress fa = space.frame_of_global(gf);
    advance_design(harness, port_.frame_cost(fa));
    ++result.frames_checked;
    if (codebook_.is_masked(gf)) continue;
    const BitVector data = sim_->read_frame(fa, /*clock_running=*/true);
    if (codebook_.check(gf, data)) continue;

    // Error: interrupt the microprocessor with (device, frame); it fetches
    // the golden frame from flash and partially reconfigures.
    ++result.errors_found;
    ++total_errors_;
    ScrubEvent event;
    event.global_frame = gf;
    event.time = elapsed_;
    advance_design(harness, options_.error_handling_overhead);

    BitVector golden = flash_->fetch_frame(gf);
    if (options_.bit_granular_repair && fa.kind == ColumnKind::kClb) {
      // §IV-B: write only the corrupted bits. Dynamic LUT locations are
      // skipped (their live contents are not errors). Each bit write is a
      // short port transaction.
      const BitVector live = sim_->read_frame(fa);
      u32 writes = 0;
      for (u32 off = 0; off < live.size(); ++off) {
        if (live.get(off) == golden.get(off)) continue;
        bool dynamic_site = false;
        for (const LutSiteRef& site : design_->dynamic_lut_sites) {
          if (site.tile.col != fa.col) continue;
          const int slice = site.lut / kLutsPerSlice;
          if (!ConfigSpace::frame_holds_slice_lut_bits(fa.frame, slice)) continue;
          const u32 site_off =
              static_cast<u32>(site.tile.row) * kBitsPerTilePerFrame +
              static_cast<u32>(site.lut % kLutsPerSlice);
          if (site_off == off) {
            dynamic_site = true;
            break;
          }
        }
        if (dynamic_site) continue;
        sim_->write_config_bit(BitAddress{fa, off}, golden.get(off));
        ++writes;
      }
      advance_design(harness,
                     options_.timing.op_overhead +
                         options_.timing.frame_overhead +
                         options_.timing.byte_time * static_cast<i64>(writes));
      event.repaired = true;
      ++result.repairs;
      if (options_.reset_after_repair) {
        if (harness) {
          harness->restart();
        } else {
          sim_->reset();
        }
        event.reset_issued = true;
        ++result.resets;
      }
      result.events.push_back(event);
      continue;
    }
    if (options_.rmw_repair && fa.kind == ColumnKind::kClb) {
      // Read-modify-write: preserve live dynamic LUT contents covered by
      // this frame (paper §IV-B).
      for (const LutSiteRef& site : design_->dynamic_lut_sites) {
        if (site.tile.col != fa.col) continue;
        const int slice = site.lut / kLutsPerSlice;
        if (!ConfigSpace::frame_holds_slice_lut_bits(fa.frame, slice)) continue;
        const u32 offset =
            static_cast<u32>(site.tile.row) * kBitsPerTilePerFrame +
            static_cast<u32>(site.lut % kLutsPerSlice);
        golden.set(offset, data.get(offset));
      }
    }
    advance_design(harness, port_.frame_cost(fa));
    sim_->write_frame(fa, golden);
    event.repaired = true;
    ++result.repairs;

    if (options_.reset_after_repair) {
      if (harness) {
        harness->restart();
      } else {
        sim_->reset();
      }
      event.reset_issued = true;
      ++result.resets;
    }
    result.events.push_back(event);
  }
  result.pass_time = elapsed_ - pass_start;
  return result;
}

void Scrubber::insert_artificial_seu(const BitAddress& addr) {
  BitVector img = sim_->read_frame(addr.frame);
  img.flip(addr.offset);
  advance_design(nullptr, port_.frame_cost(addr.frame));
  sim_->write_frame(addr.frame, img);
}

}  // namespace vscrub
