// The on-orbit fault manager (paper §II-A, Fig. 4): the radiation-hardened
// Actel controller continuously reads back every configuration frame,
// computes a CRC per frame, compares against the stored codebook, and on
// mismatch interrupts the microprocessor, which fetches the golden frame
// from flash and partially reconfigures the device while it runs.
//
// API v3: WHICH frames are visited, in WHAT order, and whether a visit
// checks (readback+CRC) or blindly rewrites is decided by a ScrubPolicy
// (scrub/policy.h). The Scrubber keeps the shared plumbing — faulty-link
// transfers, confirm rereads, repair verify, flash ECC, escalation,
// metrics/trace — identical under every policy. With no policy configured
// the behaviour is bit-identical to API v2.
#pragma once

#include <vector>

#include "bitstream/codebook.h"
#include "bitstream/selectmap.h"
#include "common/event_trace.h"
#include "common/metrics.h"
#include "scrub/flash.h"
#include "scrub/policy.h"
#include "sim/harness.h"

namespace vscrub {

struct ScrubberOptions {
  SelectMapTiming timing = SelectMapTiming::actel_profile();
  /// Paper Fig. 4: the system is reset after a frame repair.
  bool reset_after_repair = true;
  /// How confirmed errors are repaired (paper §IV-B). Replaces the API-v2
  /// `rmw_repair`/`bit_granular_repair` bool pair.
  RepairMode repair_mode = RepairMode::kGoldenOverwrite;
  /// Pass-scheduling strategy. Null selects the paper's readback_crc loop,
  /// which is bit-identical to the API-v2 Scrubber.
  ScrubPolicyPtr policy;
  /// Per-global-frame sensitive-bit counts (mine_frame_sensitivity) for
  /// policies that rank frames. Empty = no data.
  std::vector<u32> frame_sensitivity;
  /// This device's slot within its scrub group, for intermodular policies.
  u32 module_index = 0;
  u32 module_count = 1;
  /// Mask frames that hold legitimate dynamic LUT state out of CRC checking
  /// (paper §IV-A). Managed through the codebook.
  bool mask_dynamic_frames = true;
  /// §IV-A architecture variant: the device reads dynamic LUT locations
  /// back as zeros (fabric zeroed_dynamic_readback), so the codebook is
  /// built against a zeroed golden image and nothing needs masking.
  bool zeroed_dynamic_codebook = false;
  /// Microprocessor overhead per error: interrupt latency + flash fetch +
  /// command setup on the RAD6000 path.
  SimTime error_handling_overhead = SimTime::microseconds(450);
  /// Design clock, for advancing the running design while scrubbing.
  double clock_hz = 20e6;
  /// Cap on actually-simulated design cycles per frame operation (the
  /// modeled time still advances exactly; this only bounds simulation work).
  u32 max_sim_cycles_per_frame = 2;
  /// Fault model of the scrub datapath itself (readback noise, transfer
  /// timeouts). All-zero = ideal link and exact legacy behaviour: no
  /// re-reads, no verify readbacks, no extra modeled time.
  ScrubLinkFaults link_faults;
  /// With a faulty link, a CRC mismatch is only repaired once two
  /// consecutive readbacks agree bit-for-bit and still fail CRC; this bounds
  /// the confirming re-reads. Mismatches that never confirm are counted as
  /// false alarms (readback noise) and left for the next pass.
  u32 crc_confirm_rereads = 2;
  /// With a faulty link, every repair is verified by a readback; a failed
  /// verify rewrites the golden frame, up to this many attempts, then
  /// escalates to a reset.
  u32 repair_verify_attempts = 2;
  /// Optional observability sinks (may stay null): per-pass counters land in
  /// `metrics`, individual detections/repairs/escalations in `trace`.
  MetricsRegistry* metrics = nullptr;
  EventTrace* trace = nullptr;
};

/// Rejects contradictory option combinations with a ScrubConfigError: a
/// blind policy cannot use a repair mode that needs readback data
/// (kReadModifyWrite/kBitGranular), and must keep dynamic frames masked (a
/// blind write through live LUT state would clobber it) — which also rules
/// out the zeroed-codebook variant. Called by the Scrubber and Payload
/// constructors; callers building options by hand may call it early.
void validate_scrub_options(const ScrubberOptions& options);

struct ScrubEvent {
  u32 global_frame = 0;
  SimTime time;       ///< modeled time of detection within the mission
  bool repaired = false;
  bool reset_issued = false;
};

struct ScrubPassResult {
  u32 frames_checked = 0;
  u32 errors_found = 0;  ///< confirmed configuration errors
  u32 repairs = 0;
  u32 resets = 0;
  u32 blind_writes = 0;  ///< unconditional golden rewrites (blind policies)
  // Scrub-path fault handling (all zero with an ideal link):
  u32 false_alarms = 0;        ///< CRC mismatches attributed to readback noise
  u32 transfer_timeouts = 0;   ///< timed-out transfer attempts (retried)
  u32 retries_exhausted = 0;   ///< transfers abandoned after max retries
  u32 repair_verify_failures = 0;  ///< post-repair readbacks that failed CRC
  u32 flash_uncorrectable = 0;     ///< golden fetches with double-bit words
  /// Repairs served from the SECDED golden shadow after a flash ECC event
  /// (golden_ecc policies only); each one replaces a reset escalation.
  u32 ecc_fallback_repairs = 0;
  u32 escalations = 0;  ///< resets issued because repair could not proceed
  SimTime pass_time;    ///< modeled duration of this pass
  /// Ideal (fault-free) transfer cost of the frames this pass visited. For
  /// the default full-scan readback policy this equals clean_pass_cost();
  /// partial-pass policies (priority) and blind policies visit fewer frames.
  SimTime clean_cost;
  /// Modeled time spent on the fault path (re-reads, retries, backoff,
  /// verify readbacks, repair rewrites). For a pass with no confirmed
  /// errors, pass_time == clean_cost + fault_overhead exactly.
  SimTime fault_overhead;
  std::vector<ScrubEvent> events;
};

class Scrubber {
 public:
  /// `design` supplies the dynamic-frame mask; `harness` (optional) lets the
  /// design keep running while frames are read back. Throws ScrubConfigError
  /// on contradictory options (see validate_scrub_options).
  Scrubber(const PlacedDesign& design, FabricSim& sim, FlashStore& flash,
           const ScrubberOptions& options);

  /// One scrub pass over the frames the policy plans for this pass (the
  /// full device, for the default policy).
  ScrubPassResult scrub_pass(DesignHarness* harness = nullptr);

  /// Modeled cost of one clean full-scan pass (no errors): readback of every
  /// frame. Policy-planned passes report their own cost in
  /// ScrubPassResult::clean_cost.
  SimTime clean_pass_cost() const;

  /// Artificial SEU insertion (paper §II-A): the microprocessor partially
  /// configures the device with a corrupt frame "to verify that the response
  /// to an SEU is correct at the logic and software level".
  void insert_artificial_seu(const BitAddress& addr);

  const CrcCodebook& codebook() const { return codebook_; }
  const ScrubPolicy& policy() const { return *policy_; }
  SimTime elapsed() const { return elapsed_; }
  u64 total_errors() const { return total_errors_; }

 private:
  void advance_design(DesignHarness* harness, SimTime dt);
  void issue_reset(DesignHarness* harness, ScrubPassResult& result,
                   ScrubEvent& event);
  /// Readback through the faulty link: transfer (retries/backoff), then the
  /// device read with sampled readback-path noise. `primary` distinguishes
  /// the once-per-frame scheduled read (whose ideal cost is part of
  /// clean_cost) from extra fault-path reads (charged to fault_overhead).
  /// Returns false when retries were exhausted.
  bool read_with_link(const FrameAddress& fa, bool primary,
                      DesignHarness* harness, ScrubPassResult& result,
                      BitVector* data);
  /// One readback+CRC visit (the paper's loop body, shared plumbing and
  /// all). Bit-identical to the API-v2 per-frame iteration.
  void visit_readback(u32 gf, const FrameAddress& fa, DesignHarness* harness,
                      ScrubPassResult& result);
  /// One blind visit: fetch golden from flash, write it, no readback.
  void visit_blind(u32 gf, const FrameAddress& fa, DesignHarness* harness,
                   ScrubPassResult& result);
  /// Replaces `golden` with the SECDED shadow copy of frame `gf` after a
  /// flash ECC event. Returns false (leaving `golden` alone) when the policy
  /// keeps no shadow or the shadow itself decodes uncorrectable.
  bool golden_from_shadow(u32 gf, BitVector& golden,
                          ScrubPassResult& result);
  void publish_metrics(const ScrubPassResult& result);

  const PlacedDesign* design_;
  FabricSim* sim_;
  FlashStore* flash_;
  ScrubberOptions options_;
  ScrubPolicyPtr policy_;
  CrcCodebook codebook_;
  SelectMapPort port_;
  SimTime elapsed_;
  u64 total_errors_ = 0;
  u64 pass_index_ = 0;
  double cycle_debt_ = 0.0;
  std::vector<u32> plan_;
  /// SECDED-protected golden shadow, one EccWord vector per global frame;
  /// built only for golden_ecc policies, empty otherwise.
  std::vector<std::vector<EccWord>> ecc_shadow_;
};

}  // namespace vscrub
