// The on-orbit fault manager (paper §II-A, Fig. 4): the radiation-hardened
// Actel controller continuously reads back every configuration frame,
// computes a CRC per frame, compares against the stored codebook, and on
// mismatch interrupts the microprocessor, which fetches the golden frame
// from flash and partially reconfigures the device while it runs.
#pragma once

#include <vector>

#include "bitstream/codebook.h"
#include "bitstream/selectmap.h"
#include "common/event_trace.h"
#include "common/metrics.h"
#include "scrub/flash.h"
#include "sim/harness.h"

namespace vscrub {

struct ScrubberOptions {
  SelectMapTiming timing = SelectMapTiming::actel_profile();
  /// Paper Fig. 4: the system is reset after a frame repair.
  bool reset_after_repair = true;
  /// Read-modify-write repair (paper §IV-B): merge the live dynamic LUT
  /// state into the golden frame before writing, instead of clobbering it.
  bool rmw_repair = false;
  /// §IV-B architecture variant: repair by writing only the corrupted bits
  /// (requires the fabric's bit_granular_access variant). Implies the RMW
  /// safety property without the read-merge step.
  bool bit_granular_repair = false;
  /// Mask frames that hold legitimate dynamic LUT state out of CRC checking
  /// (paper §IV-A). Managed through the codebook.
  bool mask_dynamic_frames = true;
  /// §IV-A architecture variant: the device reads dynamic LUT locations
  /// back as zeros (fabric zeroed_dynamic_readback), so the codebook is
  /// built against a zeroed golden image and nothing needs masking.
  bool zeroed_dynamic_codebook = false;
  /// Microprocessor overhead per error: interrupt latency + flash fetch +
  /// command setup on the RAD6000 path.
  SimTime error_handling_overhead = SimTime::microseconds(450);
  /// Design clock, for advancing the running design while scrubbing.
  double clock_hz = 20e6;
  /// Cap on actually-simulated design cycles per frame operation (the
  /// modeled time still advances exactly; this only bounds simulation work).
  u32 max_sim_cycles_per_frame = 2;
  /// Fault model of the scrub datapath itself (readback noise, transfer
  /// timeouts). All-zero = ideal link and exact legacy behaviour: no
  /// re-reads, no verify readbacks, no extra modeled time.
  ScrubLinkFaults link_faults;
  /// With a faulty link, a CRC mismatch is only repaired once two
  /// consecutive readbacks agree bit-for-bit and still fail CRC; this bounds
  /// the confirming re-reads. Mismatches that never confirm are counted as
  /// false alarms (readback noise) and left for the next pass.
  u32 crc_confirm_rereads = 2;
  /// With a faulty link, every repair is verified by a readback; a failed
  /// verify rewrites the golden frame, up to this many attempts, then
  /// escalates to a reset.
  u32 repair_verify_attempts = 2;
  /// Optional observability sinks (may stay null): per-pass counters land in
  /// `metrics`, individual detections/repairs/escalations in `trace`.
  MetricsRegistry* metrics = nullptr;
  EventTrace* trace = nullptr;
};

struct ScrubEvent {
  u32 global_frame = 0;
  SimTime time;       ///< modeled time of detection within the mission
  bool repaired = false;
  bool reset_issued = false;
};

struct ScrubPassResult {
  u32 frames_checked = 0;
  u32 errors_found = 0;  ///< confirmed configuration errors
  u32 repairs = 0;
  u32 resets = 0;
  // Scrub-path fault handling (all zero with an ideal link):
  u32 false_alarms = 0;        ///< CRC mismatches attributed to readback noise
  u32 transfer_timeouts = 0;   ///< timed-out transfer attempts (retried)
  u32 retries_exhausted = 0;   ///< transfers abandoned after max retries
  u32 repair_verify_failures = 0;  ///< post-repair readbacks that failed CRC
  u32 flash_uncorrectable = 0;     ///< golden fetches with double-bit words
  u32 escalations = 0;  ///< resets issued because repair could not proceed
  SimTime pass_time;    ///< modeled duration of this pass
  /// Modeled time spent on the fault path (re-reads, retries, backoff,
  /// verify readbacks, repair rewrites). For a pass with no confirmed
  /// errors, pass_time == clean_pass_cost() + fault_overhead exactly.
  SimTime fault_overhead;
  std::vector<ScrubEvent> events;
};

class Scrubber {
 public:
  /// `design` supplies the dynamic-frame mask; `harness` (optional) lets the
  /// design keep running while frames are read back.
  Scrubber(const PlacedDesign& design, FabricSim& sim, FlashStore& flash,
           const ScrubberOptions& options);

  /// One full scrub pass over every frame of the device.
  ScrubPassResult scrub_pass(DesignHarness* harness = nullptr);

  /// Modeled cost of one clean pass (no errors): readback of every frame.
  SimTime clean_pass_cost() const;

  /// Artificial SEU insertion (paper §II-A): the microprocessor partially
  /// configures the device with a corrupt frame "to verify that the response
  /// to an SEU is correct at the logic and software level".
  void insert_artificial_seu(const BitAddress& addr);

  const CrcCodebook& codebook() const { return codebook_; }
  SimTime elapsed() const { return elapsed_; }
  u64 total_errors() const { return total_errors_; }

 private:
  void advance_design(DesignHarness* harness, SimTime dt);
  void issue_reset(DesignHarness* harness, ScrubPassResult& result,
                   ScrubEvent& event);
  /// Readback through the faulty link: transfer (retries/backoff), then the
  /// device read with sampled readback-path noise. `primary` distinguishes
  /// the once-per-frame scheduled read (whose ideal cost is part of
  /// clean_pass_cost) from extra fault-path reads (charged to
  /// fault_overhead). Returns false when retries were exhausted.
  bool read_with_link(const FrameAddress& fa, bool primary,
                      DesignHarness* harness, ScrubPassResult& result,
                      BitVector* data);
  void publish_metrics(const ScrubPassResult& result);

  const PlacedDesign* design_;
  FabricSim* sim_;
  FlashStore* flash_;
  ScrubberOptions options_;
  CrcCodebook codebook_;
  SelectMapPort port_;
  SimTime elapsed_;
  u64 total_errors_ = 0;
  double cycle_debt_ = 0.0;
};

}  // namespace vscrub
