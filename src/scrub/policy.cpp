#include "scrub/policy.h"

#include <algorithm>

#include "fabric/config_space.h"

namespace vscrub {
namespace {

/// The paper's loop (§II-A): every frame, scan order, readback + CRC.
class ReadbackCrcPolicy final : public ScrubPolicy {
 public:
  const char* name() const override { return "readback_crc"; }
  void plan_pass(const ScrubPolicyContext& ctx,
                 std::vector<u32>& order) const override {
    order.clear();
    order.reserve(ctx.frame_count);
    for (u32 gf = 0; gf < ctx.frame_count; ++gf) order.push_back(gf);
  }
};

/// Unconditional golden rewrite of every frame, no readback (the classic
/// "blind scrub" of the configuration-redundancy literature): upsets are
/// never detected, only silently overwritten on the next visit.
class BlindPolicy final : public ScrubPolicy {
 public:
  const char* name() const override { return "blind"; }
  void plan_pass(const ScrubPolicyContext& ctx,
                 std::vector<u32>& order) const override {
    order.clear();
    order.reserve(ctx.frame_count);
    for (u32 gf = 0; gf < ctx.frame_count; ++gf) order.push_back(gf);
  }
  FrameOp frame_op(const ScrubPolicyContext&, u32) const override {
    return FrameOp::kBlindWrite;
  }
  bool blind() const override { return true; }
};

/// Frame-priority scheduling: frames holding functionally sensitive bits
/// ("hot", per the mined verdict-store sensitivity) are checked every pass,
/// hottest first; the insensitive remainder is spread round-robin so each
/// cold frame is still visited once every `cold_stride` passes. A pass is
/// therefore shorter than a full scan, which shortens the hot-frame revisit
/// period — that is the whole point of the policy.
class PriorityPolicy final : public ScrubPolicy {
 public:
  explicit PriorityPolicy(u32 cold_stride)
      : cold_stride_(std::max<u32>(1, cold_stride)) {}

  const char* name() const override { return "priority"; }

  void plan_pass(const ScrubPolicyContext& ctx,
                 std::vector<u32>& order) const override {
    order.clear();
    const std::vector<u32>* sens = ctx.frame_sensitivity;
    if (sens == nullptr || sens->empty()) {
      // No sensitivity data: degrade to the plain scan.
      order.reserve(ctx.frame_count);
      for (u32 gf = 0; gf < ctx.frame_count; ++gf) order.push_back(gf);
      return;
    }
    std::vector<u32> hot;
    std::vector<u32> cold;
    for (u32 gf = 0; gf < ctx.frame_count; ++gf) {
      const u32 s = gf < sens->size() ? (*sens)[gf] : 0;
      (s > 0 ? hot : cold).push_back(gf);
    }
    // Hottest first; ties broken by frame index so the order is total and
    // deterministic.
    std::stable_sort(hot.begin(), hot.end(), [&](u32 a, u32 b) {
      return (*sens)[a] > (*sens)[b];
    });
    order = std::move(hot);
    const u32 slice = static_cast<u32>(ctx.pass_index % cold_stride_);
    for (u32 i = slice; i < cold.size(); i += cold_stride_) {
      order.push_back(cold[i]);
    }
  }

  u32 schedule_period() const override { return cold_stride_; }

 private:
  u32 cold_stride_;
};

/// Belle II-style intermodular staggering (arXiv:2010.16194): each module
/// scans every frame in order, but the shared fault manager interleaves the
/// modules' visits round-robin instead of finishing one device before
/// starting the next, spreading scrub attention evenly across the group.
class StaggeredPolicy final : public ScrubPolicy {
 public:
  const char* name() const override { return "staggered"; }
  void plan_pass(const ScrubPolicyContext& ctx,
                 std::vector<u32>& order) const override {
    order.clear();
    order.reserve(ctx.frame_count);
    for (u32 gf = 0; gf < ctx.frame_count; ++gf) order.push_back(gf);
  }
  bool intermodular() const override { return true; }
};

/// The readback+CRC loop with a second golden tier: the scrubber keeps a
/// SECDED-protected shadow of the golden image (common/ecc) and repairs
/// from it when a flash fetch reports a corrected or uncorrectable word —
/// closing the single-point-of-failure the flash store otherwise is. The
/// schedule is identical to readback_crc; only the escalation branch at a
/// corrupt golden fetch differs.
class GoldenEccPolicy final : public ScrubPolicy {
 public:
  const char* name() const override { return "golden_ecc"; }
  void plan_pass(const ScrubPolicyContext& ctx,
                 std::vector<u32>& order) const override {
    order.clear();
    order.reserve(ctx.frame_count);
    for (u32 gf = 0; gf < ctx.frame_count; ++gf) order.push_back(gf);
  }
  bool golden_ecc() const override { return true; }
};

}  // namespace

const char* repair_mode_name(RepairMode mode) {
  switch (mode) {
    case RepairMode::kGoldenOverwrite:
      return "golden_overwrite";
    case RepairMode::kReadModifyWrite:
      return "read_modify_write";
    case RepairMode::kBitGranular:
      return "bit_granular";
  }
  return "unknown";
}

FrameOp ScrubPolicy::frame_op(const ScrubPolicyContext&, u32) const {
  return FrameOp::kReadbackCheck;
}

const std::vector<std::string>& scrub_policy_names() {
  static const std::vector<std::string> names = {
      "readback_crc",
      "blind",
      "priority",
      "staggered",
      "golden_ecc",
  };
  return names;
}

ScrubPolicyPtr make_scrub_policy(const std::string& name,
                                 const ScrubPolicyParams& params) {
  if (name == "readback_crc" || name.empty()) {
    return std::make_shared<ReadbackCrcPolicy>();
  }
  if (name == "blind") return std::make_shared<BlindPolicy>();
  if (name == "priority") {
    return std::make_shared<PriorityPolicy>(params.priority_cold_stride);
  }
  if (name == "staggered") return std::make_shared<StaggeredPolicy>();
  if (name == "golden_ecc") return std::make_shared<GoldenEccPolicy>();
  std::string known;
  for (const std::string& n : scrub_policy_names()) {
    known += known.empty() ? n : ", " + n;
  }
  throw ScrubConfigError("unknown scrub policy '" + name + "' (known: " +
                         known + ")");
}

ScrubPolicyPtr default_scrub_policy() {
  static const ScrubPolicyPtr policy = std::make_shared<ReadbackCrcPolicy>();
  return policy;
}

std::vector<std::string> parse_scrub_policy_list(const std::string& spec) {
  if (spec.empty()) return {};
  if (spec == "all") return scrub_policy_names();
  std::vector<std::string> names;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string name =
        spec.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!name.empty()) {
      make_scrub_policy(name);  // validate: throws on unknown names
      names.push_back(name);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (names.empty()) {
    throw ScrubConfigError("empty scrub policy list '" + spec + "'");
  }
  return names;
}

std::vector<u32> mine_frame_sensitivity(
    const ConfigSpace& space, const std::unordered_set<u64>& sensitive_bits) {
  std::vector<u32> counts(space.frame_count(), 0);
  for (const u64 lin : sensitive_bits) {
    if (lin >= space.total_bits()) continue;
    const BitAddress addr = space.address_of_linear(lin);
    ++counts[space.global_frame_index(addr.frame)];
  }
  return counts;
}

}  // namespace vscrub
