// ScrubPolicy — the strategy interface of the scrub layer (API v3).
//
// PR 3 made the scrub *datapath* a fault domain; this header makes the scrub
// *schedule* a strategy. The paper reproduces exactly one policy —
// continuous readback+CRC with golden-frame partial reconfiguration (§II-A,
// Fig. 4) — but deployed scrubbers use real alternatives: blind golden
// rewrites (no readback at all), frame-priority scheduling driven by which
// bits past campaigns proved functionally sensitive, and Belle II-style
// intermodular staggering of the scan across the devices of a board
// (arXiv:2010.16194, arXiv:1806.10676).
//
// The split of responsibilities:
//   * the policy decides WHICH frames are visited, in WHAT order, and
//     whether a visit is a readback+CRC check or an unconditional golden
//     rewrite (plan_pass / frame_op / schedule knobs below);
//   * the Scrubber keeps everything the policies share — the faulty-link
//     transfer machinery, confirm-reread false-alarm filtering, repair
//     verify/escalation, flash ECC handling, metrics and tracing;
//   * the mission simulator (system/payload) compiles the same pass plans
//     into an analytic visit timetable, so a Monte-Carlo fleet races the
//     identical schedules the frame-by-frame Scrubber executes.
//
// Every policy is deterministic and stateless: the plan for a pass is a pure
// function of the ScrubPolicyContext, which is what keeps warm/cold runs,
// re-runs and any-thread-count fleets bit-identical.
#pragma once

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace vscrub {

class ConfigSpace;

/// Typed error for contradictory or unknown scrub configuration: unknown
/// policy names, and option combinations whose semantics would be undefined
/// (e.g. blind scrubbing with a repair mode that needs readback data).
/// Thrown instead of silently preferring one interpretation.
class ScrubConfigError : public Error {
 public:
  explicit ScrubConfigError(const std::string& what) : Error(what) {}
};

/// How a confirmed configuration error is repaired (paper §IV-B). Replaces
/// the API-v2 `rmw_repair` / `bit_granular_repair` bool pair, whose both-set
/// combination was accepted with undocumented precedence; the enum makes the
/// contradiction unrepresentable.
enum class RepairMode : u8 {
  /// Fetch the golden frame from flash and rewrite the whole frame.
  kGoldenOverwrite,
  /// Read-modify-write: merge the live dynamic LUT state covered by the
  /// frame into the golden image before writing, so a repair never clobbers
  /// legitimately changed state.
  kReadModifyWrite,
  /// §IV-B architecture variant: write only the corrupted bits (requires the
  /// fabric's bit_granular_access variant); dynamic LUT sites are skipped.
  kBitGranular,
};

const char* repair_mode_name(RepairMode mode);

/// What a policy wants done at one visited frame.
enum class FrameOp : u8 {
  kReadbackCheck,  ///< read back, CRC-compare, repair on confirmed mismatch
  kBlindWrite,     ///< unconditionally rewrite the golden frame, no readback
  kSkip,           ///< leave the frame alone this pass
};

/// Everything a policy may condition a pass plan on. The same context shape
/// serves the single-device Scrubber (module_count == 1) and the payload's
/// board model (module_index = device slot within the board's scrub group).
struct ScrubPolicyContext {
  u32 frame_count = 0;
  /// This device's slot within the scrub group sharing one fault manager.
  u32 module_index = 0;
  u32 module_count = 1;
  /// Monotonic pass number; policies with schedule_period() > 1 rotate
  /// their frame subsets on it.
  u64 pass_index = 0;
  /// Per-global-frame count of functionally sensitive bits, mined from the
  /// campaign verdicts (see mine_frame_sensitivity). May be null or empty;
  /// priority scheduling then degrades to scan order.
  const std::vector<u32>* frame_sensitivity = nullptr;
};

/// A scrub-scheduling strategy. Implementations must be deterministic pure
/// functions of the context — no internal state, no randomness — so that a
/// policy can be shared across threads and replays are bit-identical.
class ScrubPolicy {
 public:
  virtual ~ScrubPolicy() = default;

  /// Registry name ("readback_crc", "blind", ...).
  virtual const char* name() const = 0;

  /// Global frame indices to visit in pass ctx.pass_index, in visit order.
  /// `order` is cleared first. Frames not listed are not touched this pass.
  virtual void plan_pass(const ScrubPolicyContext& ctx,
                         std::vector<u32>& order) const = 0;

  /// What to do at one planned frame. Default: readback + CRC check.
  virtual FrameOp frame_op(const ScrubPolicyContext& ctx,
                           u32 global_frame) const;

  /// Number of passes after which the plan repeats ((pass_index % period)
  /// fully determines the plan). 1 for every-pass-identical policies.
  virtual u32 schedule_period() const { return 1; }

  /// True when the policy repairs without readback (kBlindWrite visits).
  /// Blind policies reject repair modes that need readback data.
  virtual bool blind() const { return false; }

  /// True when the group's fault manager interleaves this policy's visits
  /// across modules (Belle II intermodular staggering) instead of scanning
  /// the group's devices one after another.
  virtual bool intermodular() const { return false; }

  /// True when the scrubber keeps a second, SECDED-protected golden copy
  /// (common/ecc Hamming(72,64)) beside the flash store and repairs from it
  /// whenever a flash fetch reports an ECC event. A corrupted flash frame
  /// then costs one shadow decode instead of a reset + full reconfiguration
  /// escalation.
  virtual bool golden_ecc() const { return false; }
};

using ScrubPolicyPtr = std::shared_ptr<const ScrubPolicy>;

/// Tuning knobs a policy may take at construction.
struct ScrubPolicyParams {
  /// priority: a frame with no sensitive bits is visited once every
  /// cold_stride passes, while sensitive ("hot") frames are visited every
  /// pass. Must be >= 1.
  u32 priority_cold_stride = 4;
};

/// The registry: every built-in policy name, in table order.
const std::vector<std::string>& scrub_policy_names();

/// Constructs a policy by registry name. Throws ScrubConfigError on an
/// unknown name (the message lists the registry).
ScrubPolicyPtr make_scrub_policy(const std::string& name,
                                 const ScrubPolicyParams& params = {});

/// The default policy — the paper's readback+CRC loop. A Scrubber or
/// Payload with no policy configured behaves exactly like API v2.
ScrubPolicyPtr default_scrub_policy();

/// Parses a `--scrub-policy` spec shared by the CLI and the VSRP1 request
/// field: "" → empty list (keep the default), "all" → every registry name,
/// otherwise a comma-separated list. Every listed name is validated against
/// the registry; unknown names throw ScrubConfigError.
std::vector<std::string> parse_scrub_policy_list(const std::string& spec);

/// Mines per-frame sensitivity from a campaign's sensitive set (linear bit
/// indices, the same map the verdict store serves campaign replays from):
/// result[global_frame] = number of functionally sensitive bits in that
/// frame. This is what `priority` ranks and partitions frames by.
std::vector<u32> mine_frame_sensitivity(
    const ConfigSpace& space, const std::unordered_set<u64>& sensitive_bits);

}  // namespace vscrub
