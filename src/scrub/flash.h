// ECC-protected configuration store — the paper's 16MB FLASH module holding
// "more than twenty configuration bit streams", with error control coding
// "to mitigate SEUs that might occur while the memory is being accessed"
// (§II). Images are stored as Hamming(72,64) SECDED words; reads correct
// single-bit upsets and flag double-bit corruption.
#pragma once

#include <vector>

#include "bitstream/bitstream.h"
#include "common/ecc.h"
#include "common/rng.h"

namespace vscrub {

/// Radiation fault model of the flash array itself: each fetched ECC word
/// may have accumulated upsets since it was last scrubbed. Rates default to
/// zero (pristine array); sampling is seeded for determinism.
struct FlashFaultModel {
  /// Per fetched word, probability of one accumulated bit upset (data or
  /// check bit) — SECDED corrects these and the fetch scrubs them back.
  double word_upset_prob = 0.0;
  /// Per fetched word, probability of an accumulated double-bit upset —
  /// SECDED only flags these; the fetched frame is not trustworthy.
  double word_double_upset_prob = 0.0;
  u64 seed = 0xf1a5;

  bool enabled() const {
    return word_upset_prob > 0.0 || word_double_upset_prob > 0.0;
  }

  /// Paper-plausible on-orbit rates: the 16MB array sees upsets at a small
  /// fraction of the FPGA configuration rate; double-bit events are rare.
  static FlashFaultModel leo_profile() {
    FlashFaultModel f;
    f.word_upset_prob = 1e-7;
    f.word_double_upset_prob = 1e-9;
    return f;
  }
};

class FlashStore {
 public:
  struct Stats {
    u64 reads = 0;
    u64 corrected = 0;
    u64 uncorrectable = 0;
    bool operator==(const Stats&) const = default;
  };

  /// ECC outcome of one fetch_frame call, for callers that must react to a
  /// specific fetch (a scrubber must not repair with a double-bit frame).
  struct FetchStatus {
    u32 corrected = 0;
    u32 uncorrectable = 0;
  };

  /// Stores one configuration image (frame-aligned, ECC per 64-bit word).
  explicit FlashStore(const Bitstream& image,
                      const FlashFaultModel& faults = {});

  u32 frame_count() const { return static_cast<u32>(frame_words_.size()); }
  u64 word_count() const { return total_words_; }

  /// Fetches a frame, running ECC decode on every word (after sampling the
  /// fault model, when enabled). Returns the (possibly corrected) frame
  /// data; uncorrectable words are returned as stored and counted in stats
  /// and in `*status` when given.
  BitVector fetch_frame(u32 global_frame, FetchStatus* status = nullptr);

  /// Radiation hit in the flash array: flips one stored bit (data or check).
  /// bit 0..63 => data bit, 64..71 => check bit.
  void inject_upset(u32 global_frame, u32 word_in_frame, u32 bit);

  const Stats& stats() const { return stats_; }

 private:
  struct StoredFrame {
    std::vector<EccWord> words;
    u32 bits;  ///< original frame length
  };
  std::vector<StoredFrame> frame_words_;
  u64 total_words_ = 0;
  FlashFaultModel faults_;
  Rng rng_;
  Stats stats_;
};

}  // namespace vscrub
