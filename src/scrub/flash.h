// ECC-protected configuration store — the paper's 16MB FLASH module holding
// "more than twenty configuration bit streams", with error control coding
// "to mitigate SEUs that might occur while the memory is being accessed"
// (§II). Images are stored as Hamming(72,64) SECDED words; reads correct
// single-bit upsets and flag double-bit corruption.
#pragma once

#include <vector>

#include "bitstream/bitstream.h"
#include "common/ecc.h"

namespace vscrub {

class FlashStore {
 public:
  struct Stats {
    u64 reads = 0;
    u64 corrected = 0;
    u64 uncorrectable = 0;
  };

  /// Stores one configuration image (frame-aligned, ECC per 64-bit word).
  explicit FlashStore(const Bitstream& image);

  u32 frame_count() const { return static_cast<u32>(frame_words_.size()); }
  u64 word_count() const { return total_words_; }

  /// Fetches a frame, running ECC decode on every word. Returns the
  /// (possibly corrected) frame data; uncorrectable words are returned as
  /// stored and counted in stats.
  BitVector fetch_frame(u32 global_frame);

  /// Radiation hit in the flash array: flips one stored bit (data or check).
  /// bit 0..63 => data bit, 64..71 => check bit.
  void inject_upset(u32 global_frame, u32 word_in_frame, u32 bit);

  const Stats& stats() const { return stats_; }

 private:
  struct StoredFrame {
    std::vector<EccWord> words;
    u32 bits;  ///< original frame length
  };
  std::vector<StoredFrame> frame_words_;
  u64 total_words_ = 0;
  Stats stats_;
};

}  // namespace vscrub
