#include "netlist/drc.h"

#include <queue>
#include <unordered_set>

namespace vscrub {
namespace {

bool has_comb_cycle(const Netlist& nl) {
  // Same edge definition as RefSim: LUT inputs, OUTPUT sources and SRL tap
  // addresses are combinational.
  auto comb_pin = [](const Cell& c, std::size_t pin) {
    switch (c.kind) {
      case CellKind::kLut:
      case CellKind::kOutput: return true;
      case CellKind::kSrl16: return pin >= 2;
      default: return false;
    }
  };
  auto comb_node = [](const Cell& c) {
    return c.kind == CellKind::kLut || c.kind == CellKind::kSrl16 ||
           c.kind == CellKind::kOutput;
  };
  std::vector<u32> indegree(nl.cell_count(), 0);
  std::size_t total = 0;
  for (CellId id = 0; id < nl.cell_count(); ++id) {
    const Cell& c = nl.cell(id);
    if (!comb_node(c)) continue;
    ++total;
    for (std::size_t pin = 0; pin < c.inputs.size(); ++pin) {
      const NetId in = c.inputs[pin];
      if (in == kNoNet || !comb_pin(c, pin)) continue;
      if (comb_node(nl.cell(nl.net(in).driver))) ++indegree[id];
    }
  }
  std::queue<CellId> ready;
  for (CellId id = 0; id < nl.cell_count(); ++id) {
    if (comb_node(nl.cell(id)) && indegree[id] == 0) ready.push(id);
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    const CellId id = ready.front();
    ready.pop();
    ++visited;
    for (NetId out : nl.cell(id).outputs) {
      for (const Net::Sink& sink : nl.net(out).sinks) {
        const Cell& sc = nl.cell(sink.cell);
        if (!comb_node(sc) || !comb_pin(sc, sink.pin)) continue;
        if (--indegree[sink.cell] == 0) ready.push(sink.cell);
      }
    }
  }
  return visited != total;
}

}  // namespace

DrcReport run_drc(const Netlist& nl) {
  DrcReport report;
  auto err = [&](std::string m) { report.errors.push_back(std::move(m)); };
  auto warn = [&](std::string m) { report.warnings.push_back(std::move(m)); };

  for (NetId n = 0; n < nl.net_count(); ++n) {
    const Net& net = nl.net(n);
    if (net.driver == kNoCell) {
      err("net " + std::to_string(n) + " (" + net.name + ") has no driver");
      continue;
    }
    if (net.sinks.empty() && nl.cell(net.driver).kind != CellKind::kConst) {
      warn("net " + std::to_string(n) + " (" + net.name + ") has no sinks");
    }
  }

  for (CellId id = 0; id < nl.cell_count(); ++id) {
    const Cell& c = nl.cell(id);
    switch (c.kind) {
      case CellKind::kLut:
        if (c.num_inputs > 4) {
          err("LUT cell " + std::to_string(id) + " has bad arity");
        }
        for (unsigned i = 0; i < c.num_inputs; ++i) {
          if (c.inputs[i] == kNoNet) {
            err("LUT cell " + std::to_string(id) + " input " +
                std::to_string(i) + " unconnected");
          }
        }
        break;
      case CellKind::kFf:
      case CellKind::kSrl16:
        if (c.inputs[0] == kNoNet) {
          err("sequential cell " + std::to_string(id) + " has no D input");
        }
        break;
      default:
        break;
    }
  }

  std::unordered_set<std::string> port_names;
  for (CellId id : nl.input_cells()) {
    if (!port_names.insert(nl.cell(id).name).second) {
      err("duplicate port name " + nl.cell(id).name);
    }
  }
  for (CellId id : nl.output_cells()) {
    if (!port_names.insert(nl.cell(id).name).second) {
      err("duplicate port name " + nl.cell(id).name);
    }
  }

  if (has_comb_cycle(nl)) err("netlist contains a combinational cycle");
  return report;
}

}  // namespace vscrub
