// LUT-level structural netlist IR. This is the "design entry" layer: the
// paper's test designs (Figs. 9 and 10) are built as netlists of LUT4s, FFs,
// SRL16s and BRAMs, then placed, routed and bitgen'd onto the fabric.
#pragma once

#include <array>
#include <limits>
#include <string>
#include <vector>

#include "common/types.h"

namespace vscrub {

using CellId = u32;
using NetId = u32;
inline constexpr NetId kNoNet = std::numeric_limits<NetId>::max();
inline constexpr CellId kNoCell = std::numeric_limits<CellId>::max();

enum class CellKind : u8 {
  kInput,   ///< primary input port (driven by the testbench)
  kOutput,  ///< primary output port (observed by the comparator)
  kConst,   ///< constant 0/1 — implementation chosen at PnR time
            ///< (half-latch, LUT-ROM, or external pin; see HalfLatchPolicy)
  kLut,     ///< combinational LUT, up to 4 inputs
  kFf,      ///< D flip-flop with optional CE and synchronous reset
  kSrl16,   ///< 16-bit shift register in a LUT site (dynamic LUT state)
  kBram,    ///< 256x16 block RAM with registered output
};

/// Pin conventions:
///   kLut:    0..3  = LUT inputs (only the first `num_inputs` used)
///   kFf:     0 = D, 1 = CE (optional), 2 = SR (optional)
///   kSrl16:  0 = D, 1 = CE (optional), 2..5 = tap address A0..A3
///   kOutput: 0 = source
///   kBram:   0 = WE, 1..8 = ADDR[0..7], 9..24 = DIN[0..15]
struct Cell {
  CellKind kind = CellKind::kLut;
  std::string name;
  u16 lut_truth = 0;      ///< kLut: truth table; kSrl16: initial contents
  u8 num_inputs = 0;      ///< kLut: arity
  bool const_value = false;
  bool ff_init = false;
  /// Placement-region hint: 0 = anywhere; g>0 = column band g of the groups
  /// present in the design (used by TMR for domain separation).
  u8 placement_group = 0;
  std::vector<NetId> inputs;
  std::vector<NetId> outputs;  ///< 1 net for most kinds; 16 for kBram (DOUT)
};

struct Net {
  std::string name;
  CellId driver = kNoCell;
  u8 driver_pin = 0;  ///< output pin index of the driver (BRAM DOUT lane)
  struct Sink {
    CellId cell;
    u8 pin;
  };
  std::vector<Sink> sinks;
};

class Netlist {
 public:
  explicit Netlist(std::string name = "design") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // ---- Construction ----------------------------------------------------------
  NetId add_input(const std::string& port_name);
  CellId add_output(const std::string& port_name, NetId src);
  NetId const_net(bool value);  ///< memoized per value
  NetId add_lut(u16 truth, const std::vector<NetId>& ins,
                const std::string& cell_name = {});
  NetId add_ff(NetId d, bool init = false, NetId ce = kNoNet, NetId sr = kNoNet,
               const std::string& cell_name = {});
  NetId add_srl16(NetId d, const std::array<NetId, 4>& addr, NetId ce = kNoNet,
                  u16 init = 0, const std::string& cell_name = {});
  static constexpr int kBramWidthNets = 16;
  struct BramPorts {
    CellId cell;
    std::array<NetId, kBramWidthNets> dout;
  };
  BramPorts add_bram(NetId we, const std::array<NetId, 8>& addr,
                     const std::array<NetId, 16>& din,
                     const std::vector<u16>& init_words = {},
                     const std::string& cell_name = {});

  /// Sets a cell's placement-region hint (see Cell::placement_group).
  void set_placement_group(CellId cell, u8 group) {
    cells_[cell].placement_group = group;
  }

  /// Removes LUT input `pin` from `cell` (a kLut), replacing the truth
  /// table with `new_truth` over the remaining inputs. Used by the
  /// constant-folding legalization pass.
  void fold_lut_input(CellId cell, unsigned pin, u16 new_truth);

  /// Reconnects input `pin` of `cell` to `new_net`. Needed to close
  /// sequential feedback loops (counters, LFSRs): the FF is created with a
  /// placeholder D and rewired once the next-state logic exists.
  void rewire_input(CellId cell, u8 pin, NetId new_net);

  // ---- Access ----------------------------------------------------------------
  std::size_t cell_count() const { return cells_.size(); }
  std::size_t net_count() const { return nets_.size(); }
  const Cell& cell(CellId id) const { return cells_[id]; }
  const Net& net(NetId id) const { return nets_[id]; }
  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<Net>& nets() const { return nets_; }

  /// Primary ports in declaration order.
  const std::vector<CellId>& input_cells() const { return input_cells_; }
  const std::vector<CellId>& output_cells() const { return output_cells_; }
  std::size_t num_inputs() const { return input_cells_.size(); }
  std::size_t num_outputs() const { return output_cells_.size(); }

  /// BRAM initial contents (indexed like cells; empty for non-BRAM).
  const std::vector<u16>& bram_init(CellId id) const { return bram_init_[id]; }

  struct Stats {
    std::size_t luts = 0;
    std::size_t ffs = 0;
    std::size_t srl16s = 0;
    std::size_t brams = 0;
    std::size_t consts = 0;
    /// Slice estimate with LUT/FF pairing: a slice holds 2 LUT sites, each
    /// pairable with one FF.
    std::size_t slice_estimate = 0;
  };
  Stats stats() const;

 private:
  NetId new_net(CellId driver, u8 driver_pin, const std::string& net_name = {});
  void connect(NetId net, CellId cell, u8 pin);

  std::string name_;
  std::vector<Cell> cells_;
  std::vector<Net> nets_;
  std::vector<std::vector<u16>> bram_init_;
  std::vector<CellId> input_cells_;
  std::vector<CellId> output_cells_;
  NetId const_nets_[2] = {kNoNet, kNoNet};
};

}  // namespace vscrub
