#include "netlist/netlist.h"

#include <algorithm>

namespace vscrub {

NetId Netlist::new_net(CellId driver, u8 driver_pin, const std::string& net_name) {
  Net n;
  n.name = net_name;
  n.driver = driver;
  n.driver_pin = driver_pin;
  nets_.push_back(std::move(n));
  return static_cast<NetId>(nets_.size() - 1);
}

void Netlist::connect(NetId net, CellId cell, u8 pin) {
  if (net == kNoNet) return;
  VSCRUB_CHECK(net < nets_.size(), "connect: bad net id");
  nets_[net].sinks.push_back(Net::Sink{cell, pin});
}

NetId Netlist::add_input(const std::string& port_name) {
  Cell c;
  c.kind = CellKind::kInput;
  c.name = port_name;
  cells_.push_back(std::move(c));
  bram_init_.emplace_back();
  const CellId id = static_cast<CellId>(cells_.size() - 1);
  const NetId out = new_net(id, 0, port_name);
  cells_[id].outputs.push_back(out);
  input_cells_.push_back(id);
  return out;
}

CellId Netlist::add_output(const std::string& port_name, NetId src) {
  VSCRUB_CHECK(src != kNoNet, "output port needs a source net");
  Cell c;
  c.kind = CellKind::kOutput;
  c.name = port_name;
  c.inputs.push_back(src);
  cells_.push_back(std::move(c));
  bram_init_.emplace_back();
  const CellId id = static_cast<CellId>(cells_.size() - 1);
  connect(src, id, 0);
  output_cells_.push_back(id);
  return id;
}

NetId Netlist::const_net(bool value) {
  NetId& memo = const_nets_[value ? 1 : 0];
  if (memo != kNoNet) return memo;
  const std::string name = value ? "const1" : "const0";
  Cell c;
  c.kind = CellKind::kConst;
  c.name = name;
  c.const_value = value;
  cells_.push_back(std::move(c));
  bram_init_.emplace_back();
  const CellId id = static_cast<CellId>(cells_.size() - 1);
  memo = new_net(id, 0, name);
  cells_[id].outputs.push_back(memo);
  return memo;
}

NetId Netlist::add_lut(u16 truth, const std::vector<NetId>& ins,
                       const std::string& cell_name) {
  VSCRUB_CHECK(!ins.empty() && ins.size() <= 4, "LUT arity must be 1..4");
  Cell c;
  c.kind = CellKind::kLut;
  c.name = cell_name;
  c.lut_truth = truth;
  c.num_inputs = static_cast<u8>(ins.size());
  c.inputs = ins;
  cells_.push_back(std::move(c));
  bram_init_.emplace_back();
  const CellId id = static_cast<CellId>(cells_.size() - 1);
  for (std::size_t pin = 0; pin < ins.size(); ++pin) {
    connect(ins[pin], id, static_cast<u8>(pin));
  }
  const NetId out = new_net(id, 0, cell_name);
  cells_[id].outputs.push_back(out);
  return out;
}

NetId Netlist::add_ff(NetId d, bool init, NetId ce, NetId sr,
                      const std::string& cell_name) {
  VSCRUB_CHECK(d != kNoNet, "FF needs a D input");
  Cell c;
  c.kind = CellKind::kFf;
  c.name = cell_name;
  c.ff_init = init;
  c.inputs = {d, ce, sr};
  cells_.push_back(std::move(c));
  bram_init_.emplace_back();
  const CellId id = static_cast<CellId>(cells_.size() - 1);
  connect(d, id, 0);
  connect(ce, id, 1);
  connect(sr, id, 2);
  const NetId out = new_net(id, 0, cell_name);
  cells_[id].outputs.push_back(out);
  return out;
}

NetId Netlist::add_srl16(NetId d, const std::array<NetId, 4>& addr, NetId ce,
                         u16 init, const std::string& cell_name) {
  VSCRUB_CHECK(d != kNoNet, "SRL16 needs a D input");
  Cell c;
  c.kind = CellKind::kSrl16;
  c.name = cell_name;
  c.lut_truth = init;
  c.inputs = {d, ce, addr[0], addr[1], addr[2], addr[3]};
  cells_.push_back(std::move(c));
  bram_init_.emplace_back();
  const CellId id = static_cast<CellId>(cells_.size() - 1);
  connect(d, id, 0);
  connect(ce, id, 1);
  for (u8 i = 0; i < 4; ++i) connect(addr[i], id, static_cast<u8>(2 + i));
  const NetId out = new_net(id, 0, cell_name);
  cells_[id].outputs.push_back(out);
  return out;
}

Netlist::BramPorts Netlist::add_bram(NetId we, const std::array<NetId, 8>& addr,
                                     const std::array<NetId, 16>& din,
                                     const std::vector<u16>& init_words,
                                     const std::string& cell_name) {
  Cell c;
  c.kind = CellKind::kBram;
  c.name = cell_name;
  c.inputs.push_back(we);
  for (NetId a : addr) c.inputs.push_back(a);
  for (NetId d : din) c.inputs.push_back(d);
  cells_.push_back(std::move(c));
  std::vector<u16> init = init_words;
  init.resize(256, 0);
  bram_init_.push_back(std::move(init));
  const CellId id = static_cast<CellId>(cells_.size() - 1);
  for (std::size_t pin = 0; pin < cells_[id].inputs.size(); ++pin) {
    connect(cells_[id].inputs[pin], id, static_cast<u8>(pin));
  }
  BramPorts ports;
  ports.cell = id;
  for (int lane = 0; lane < kBramWidthNets; ++lane) {
    const NetId out = new_net(id, static_cast<u8>(lane));
    cells_[id].outputs.push_back(out);
    ports.dout[static_cast<std::size_t>(lane)] = out;
  }
  return ports;
}

void Netlist::fold_lut_input(CellId cell, unsigned pin, u16 new_truth) {
  VSCRUB_CHECK(cell < cells_.size() && cells_[cell].kind == CellKind::kLut,
               "fold_lut_input: not a LUT");
  Cell& c = cells_[cell];
  VSCRUB_CHECK(pin < c.num_inputs, "fold_lut_input: bad pin");
  // Detach the pin from its net.
  const NetId old_net = c.inputs[pin];
  auto& sinks = nets_[old_net].sinks;
  for (auto it = sinks.begin(); it != sinks.end(); ++it) {
    if (it->cell == cell && it->pin == pin) {
      sinks.erase(it);
      break;
    }
  }
  // Compact the remaining inputs down and fix their sink pin indices.
  for (unsigned i = pin; i + 1 < c.num_inputs; ++i) {
    c.inputs[i] = c.inputs[i + 1];
    for (auto& sink : nets_[c.inputs[i]].sinks) {
      if (sink.cell == cell && sink.pin == i + 1) {
        sink.pin = static_cast<u8>(i);
        break;
      }
    }
  }
  c.inputs.pop_back();
  --c.num_inputs;
  if (c.num_inputs == 0) {
    // Fully constant LUT: replicate the single truth bit (LUT-ROM constant).
    c.lut_truth = (new_truth & 1) ? 0xFFFF : 0x0000;
  } else {
    c.lut_truth = new_truth;
  }
}

void Netlist::rewire_input(CellId cell, u8 pin, NetId new_net) {
  VSCRUB_CHECK(cell < cells_.size(), "rewire: bad cell");
  VSCRUB_CHECK(pin < cells_[cell].inputs.size(), "rewire: bad pin");
  const NetId old_net = cells_[cell].inputs[pin];
  if (old_net == new_net) return;
  if (old_net != kNoNet) {
    auto& sinks = nets_[old_net].sinks;
    for (auto it = sinks.begin(); it != sinks.end(); ++it) {
      if (it->cell == cell && it->pin == pin) {
        sinks.erase(it);
        break;
      }
    }
  }
  cells_[cell].inputs[pin] = new_net;
  connect(new_net, cell, pin);
}

Netlist::Stats Netlist::stats() const {
  Stats s;
  for (const Cell& c : cells_) {
    switch (c.kind) {
      case CellKind::kLut: ++s.luts; break;
      case CellKind::kFf: ++s.ffs; break;
      case CellKind::kSrl16: ++s.srl16s; break;
      case CellKind::kBram: ++s.brams; break;
      case CellKind::kConst: ++s.consts; break;
      default: break;
    }
  }
  // A slice has two LUT sites (each usable as LUT or SRL16) and two FFs; a FF
  // can share a site with the LUT feeding it, so the bound is the max of the
  // two resource demands.
  const std::size_t lut_sites = s.luts + s.srl16s;
  s.slice_estimate = (std::max(lut_sites, s.ffs) + 1) / 2;
  return s;
}

}  // namespace vscrub
