// Triple-module-redundancy transform (paper §III-A: once the sensitive
// cross-section is known, "Selective Triple Module Redundancy (TMR) or
// other mitigation techniques can then be selectively applied").
//
// The transform is XTMR-style: logic, state and constants are triplicated
// into three domains; majority voters are inserted after every flip-flop
// (cutting feedback loops, so a single-domain state error self-corrects on
// the next cycle) and in front of every output port. Primary inputs are
// shared across domains (the testbench drives one copy).
#pragma once

#include "netlist/netlist.h"

namespace vscrub {

struct TmrOptions {
  /// Insert per-domain voters after flip-flops (feedback synchronization).
  /// Disabling leaves only output voters: cheaper, but state errors in one
  /// domain persist (useful as an ablation).
  bool vote_after_ff = true;
};

/// Returns the triplicated netlist. Port names and order are preserved, so
/// the TMR'd design is a drop-in replacement: its reference trace equals
/// the original's.
Netlist apply_tmr(const Netlist& src, const TmrOptions& options = {});

}  // namespace vscrub
