// Pre-PnR legalization passes.
#pragma once

#include "netlist/netlist.h"

namespace vscrub {

/// Folds constant-driven LUT inputs into the truth tables (hardwiring the
/// input and dropping the pin). A LUT whose inputs are all constant becomes
/// a 0-input constant generator (truth 0x0000/0xFFFF — the LUT-ROM constant
/// of paper §III-C). Returns the number of pins folded.
///
/// This is required for correctness, not just economy: the placer/bitgen
/// implement constants at *control* pins via half-latches or ROM routing,
/// but a constant at a LUT data pin must live in the truth table — leaving
/// the pin unconnected would read the half-latch's value (constant 1)
/// regardless of the intended polarity.
std::size_t fold_constant_lut_inputs(Netlist& nl);

}  // namespace vscrub
