#include "netlist/tmr.h"

#include <array>

namespace vscrub {
namespace {

constexpr u16 kMaj3 = 0xE8;  // majority over inputs (0,1,2)

}  // namespace

Netlist apply_tmr(const Netlist& src, const TmrOptions& options) {
  Netlist out(src.name() + "_tmr");

  // Mapping: source net -> its three domain copies in the new netlist.
  const NetId unmapped = kNoNet;
  std::vector<std::array<NetId, 3>> net_map(src.net_count(),
                                            {unmapped, unmapped, unmapped});

  // Pass 1: create shared sources (inputs, constants) and placeholders for
  // sequential outputs so feedback can be wired before its driver logic.
  for (CellId id = 0; id < src.cell_count(); ++id) {
    const Cell& c = src.cell(id);
    switch (c.kind) {
      case CellKind::kInput: {
        const NetId in = out.add_input(c.name);
        net_map[c.outputs[0]] = {in, in, in};
        break;
      }
      case CellKind::kConst: {
        const NetId k = out.const_net(c.const_value);
        net_map[c.outputs[0]] = {k, k, k};
        break;
      }
      default:
        break;
    }
  }

  // Pass 2: topological construction of combinational logic; sequential
  // cells get placeholder D inputs rewired in pass 3. We iterate until all
  // nets are mapped (the netlist is acyclic through combinational cells, so
  // this converges; sequential outputs are created on first visit).
  auto mapped = [&](NetId n) { return n == kNoNet || net_map[n][0] != unmapped; };

  std::vector<CellId> pending;
  for (CellId id = 0; id < src.cell_count(); ++id) {
    const Cell& c = src.cell(id);
    if (c.kind == CellKind::kLut || c.kind == CellKind::kFf ||
        c.kind == CellKind::kSrl16 || c.kind == CellKind::kBram ||
        c.kind == CellKind::kOutput) {
      pending.push_back(id);
    }
  }

  // Sequential cells first: create their domain FFs/SRLs/BRAMs with
  // placeholder inputs so their outputs exist for the combinational pass.
  struct SeqFix {
    CellId src_cell;
    std::array<CellId, 3> domain_cells;
  };
  std::vector<SeqFix> fixups;
  const NetId zero = out.const_net(false);

  for (CellId id : pending) {
    const Cell& c = src.cell(id);
    if (c.kind == CellKind::kFf) {
      std::array<NetId, 3> qs{};
      SeqFix fix;
      fix.src_cell = id;
      for (int d = 0; d < 3; ++d) {
        qs[static_cast<std::size_t>(d)] = out.add_ff(zero, c.ff_init);
        fix.domain_cells[static_cast<std::size_t>(d)] =
            out.net(qs[static_cast<std::size_t>(d)]).driver;
        out.set_placement_group(fix.domain_cells[static_cast<std::size_t>(d)],
                                static_cast<u8>(d + 1));
      }
      if (options.vote_after_ff) {
        // Per-domain voters across the three FF copies.
        std::array<NetId, 3> voted{};
        for (int d = 0; d < 3; ++d) {
          voted[static_cast<std::size_t>(d)] =
              out.add_lut(kMaj3, {qs[0], qs[1], qs[2]});
          out.set_placement_group(
              out.net(voted[static_cast<std::size_t>(d)]).driver,
              static_cast<u8>(d + 1));
        }
        net_map[c.outputs[0]] = voted;
      } else {
        net_map[c.outputs[0]] = qs;
      }
      fixups.push_back(fix);
    } else if (c.kind == CellKind::kSrl16) {
      std::array<NetId, 3> qs{};
      SeqFix fix;
      fix.src_cell = id;
      for (int d = 0; d < 3; ++d) {
        qs[static_cast<std::size_t>(d)] = out.add_srl16(
            zero, {zero, zero, zero, zero}, kNoNet, c.lut_truth);
        fix.domain_cells[static_cast<std::size_t>(d)] =
            out.net(qs[static_cast<std::size_t>(d)]).driver;
        out.set_placement_group(fix.domain_cells[static_cast<std::size_t>(d)],
                                static_cast<u8>(d + 1));
      }
      net_map[c.outputs[0]] = qs;
      fixups.push_back(fix);
    } else if (c.kind == CellKind::kBram) {
      std::array<NetId, 8> zaddr;
      zaddr.fill(zero);
      std::array<NetId, 16> zdin;
      zdin.fill(zero);
      SeqFix fix;
      fix.src_cell = id;
      std::array<Netlist::BramPorts, 3> ports;
      for (int d = 0; d < 3; ++d) {
        ports[static_cast<std::size_t>(d)] =
            out.add_bram(zero, zaddr, zdin, src.bram_init(id));
        fix.domain_cells[static_cast<std::size_t>(d)] =
            ports[static_cast<std::size_t>(d)].cell;
      }
      for (std::size_t lane = 0; lane < c.outputs.size(); ++lane) {
        net_map[c.outputs[lane]] = {ports[0].dout[lane], ports[1].dout[lane],
                                    ports[2].dout[lane]};
      }
      fixups.push_back(fix);
    }
  }

  // Combinational LUTs in dependency order (worklist).
  bool progress = true;
  std::vector<bool> done(src.cell_count(), false);
  while (progress) {
    progress = false;
    for (CellId id : pending) {
      const Cell& c = src.cell(id);
      if (c.kind != CellKind::kLut || done[id]) continue;
      bool ready = true;
      for (unsigned i = 0; i < c.num_inputs && ready; ++i) {
        ready = mapped(c.inputs[i]);
      }
      if (!ready) continue;
      std::array<NetId, 3> outs{};
      for (int d = 0; d < 3; ++d) {
        std::vector<NetId> ins(c.num_inputs);
        for (unsigned i = 0; i < c.num_inputs; ++i) {
          ins[i] = net_map[c.inputs[i]][static_cast<std::size_t>(d)];
        }
        outs[static_cast<std::size_t>(d)] = out.add_lut(c.lut_truth, ins);
        out.set_placement_group(out.net(outs[static_cast<std::size_t>(d)]).driver,
                                static_cast<u8>(d + 1));
      }
      net_map[c.outputs[0]] = outs;
      done[id] = true;
      progress = true;
    }
  }

  // Pass 3: rewire the sequential placeholders now that every net exists.
  auto dom = [&](NetId n, int d) -> NetId {
    if (n == kNoNet) return kNoNet;
    VSCRUB_CHECK(net_map[n][0] != unmapped, "TMR: unmapped net (comb cycle?)");
    return net_map[n][static_cast<std::size_t>(d)];
  };
  for (const SeqFix& fix : fixups) {
    const Cell& c = src.cell(fix.src_cell);
    for (int d = 0; d < 3; ++d) {
      const CellId cell = fix.domain_cells[static_cast<std::size_t>(d)];
      for (std::size_t pin = 0; pin < c.inputs.size(); ++pin) {
        const NetId n = c.inputs[pin];
        if (n == kNoNet) continue;
        out.rewire_input(cell, static_cast<u8>(pin), dom(n, d));
      }
    }
  }

  // Output ports: one final majority voter per port.
  for (CellId id : src.output_cells()) {
    const Cell& c = src.cell(id);
    const NetId n = c.inputs[0];
    VSCRUB_CHECK(net_map[n][0] != unmapped, "TMR: output net unmapped");
    const auto& copies = net_map[n];
    const NetId voted = (copies[0] == copies[1] && copies[1] == copies[2])
                            ? copies[0]  // shared source, no voter needed
                            : out.add_lut(kMaj3,
                                          {copies[0], copies[1], copies[2]});
    out.add_output(c.name, voted);
  }
  return out;
}

}  // namespace vscrub
