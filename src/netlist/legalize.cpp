#include "netlist/legalize.h"

namespace vscrub {
namespace {

/// Restricts a k-input truth table by pinning input `pin` to `value`;
/// returns the (k-1)-input table.
u16 restrict_truth(u16 truth, unsigned k, unsigned pin, bool value) {
  u16 out = 0;
  const unsigned out_bits = 1u << (k - 1);
  for (unsigned idx = 0; idx < out_bits; ++idx) {
    const unsigned low = idx & ((1u << pin) - 1);
    const unsigned high = idx >> pin;
    const unsigned full =
        (high << (pin + 1)) | (static_cast<unsigned>(value) << pin) | low;
    if ((truth >> full) & 1) out |= static_cast<u16>(1u << idx);
  }
  return out;
}

}  // namespace

std::size_t fold_constant_lut_inputs(Netlist& nl) {
  std::size_t folded = 0;
  for (CellId id = 0; id < nl.cell_count(); ++id) {
    const Cell& c = nl.cell(id);
    if (c.kind != CellKind::kLut) continue;
    // Repeat until no constant inputs remain on this LUT.
    for (;;) {
      const Cell& cur = nl.cell(id);
      int const_pin = -1;
      bool const_val = false;
      for (unsigned i = 0; i < cur.num_inputs; ++i) {
        const Cell& drv = nl.cell(nl.net(cur.inputs[i]).driver);
        if (drv.kind == CellKind::kConst) {
          const_pin = static_cast<int>(i);
          const_val = drv.const_value;
          break;
        }
      }
      if (const_pin < 0) break;
      nl.fold_lut_input(id, static_cast<unsigned>(const_pin),
                        restrict_truth(cur.lut_truth, cur.num_inputs,
                                       static_cast<unsigned>(const_pin),
                                       const_val));
      ++folded;
    }
  }
  return folded;
}

}  // namespace vscrub
