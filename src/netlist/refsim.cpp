#include "netlist/refsim.h"

#include <algorithm>
#include <queue>

namespace vscrub {
namespace {

/// Pins of `cell` that form combinational source->sink edges (others are
/// sampled at the clock edge).
bool pin_is_combinational(const Cell& cell, u8 pin) {
  switch (cell.kind) {
    case CellKind::kLut:
    case CellKind::kOutput:
      return true;
    case CellKind::kSrl16:
      return pin >= 2;  // tap address; D/CE are sequential
    default:
      return false;  // FF and BRAM sample everything at the edge
  }
}

bool cell_is_comb_node(const Cell& cell) {
  // Cells whose *output* is a combinational function of nets: LUTs and SRL16
  // (address -> tap). Outputs are evaluated too (they just copy).
  return cell.kind == CellKind::kLut || cell.kind == CellKind::kSrl16 ||
         cell.kind == CellKind::kOutput;
}

}  // namespace

RefSim::RefSim(const Netlist& nl) : nl_(&nl) {
  values_.assign(nl.net_count(), 0);
  input_values_.assign(nl.num_inputs(), 0);
  srl_state_.assign(nl.cell_count(), 0);
  bram_mem_.resize(nl.cell_count());
  bram_dout_.assign(nl.cell_count(), 0);

  // Kahn topological sort over combinational edges.
  std::vector<u32> indegree(nl.cell_count(), 0);
  for (CellId id = 0; id < nl.cell_count(); ++id) {
    const Cell& c = nl.cell(id);
    if (!cell_is_comb_node(c)) continue;
    for (std::size_t pin = 0; pin < c.inputs.size(); ++pin) {
      const NetId in = c.inputs[pin];
      if (in == kNoNet || !pin_is_combinational(c, static_cast<u8>(pin))) continue;
      const Cell& driver = nl.cell(nl.net(in).driver);
      if (cell_is_comb_node(driver)) ++indegree[id];
    }
  }
  std::queue<CellId> ready;
  for (CellId id = 0; id < nl.cell_count(); ++id) {
    if (cell_is_comb_node(nl.cell(id)) && indegree[id] == 0) ready.push(id);
  }
  std::size_t comb_total = 0;
  for (CellId id = 0; id < nl.cell_count(); ++id) {
    if (cell_is_comb_node(nl.cell(id))) ++comb_total;
  }
  comb_order_.reserve(comb_total);
  while (!ready.empty()) {
    const CellId id = ready.front();
    ready.pop();
    comb_order_.push_back(id);
    const Cell& c = nl.cell(id);
    for (NetId out : c.outputs) {
      for (const Net::Sink& sink : nl.net(out).sinks) {
        const Cell& sc = nl.cell(sink.cell);
        if (!cell_is_comb_node(sc) || !pin_is_combinational(sc, sink.pin)) continue;
        if (--indegree[sink.cell] == 0) ready.push(sink.cell);
      }
    }
  }
  VSCRUB_CHECK(comb_order_.size() == comb_total,
               "netlist has a combinational cycle");
  reset();
}

void RefSim::reset() {
  for (CellId id = 0; id < nl_->cell_count(); ++id) {
    const Cell& c = nl_->cell(id);
    switch (c.kind) {
      case CellKind::kFf:
        values_[c.outputs[0]] = c.ff_init ? 1 : 0;
        break;
      case CellKind::kSrl16:
        srl_state_[id] = c.lut_truth;
        break;
      case CellKind::kBram:
        bram_mem_[id] = nl_->bram_init(id);
        bram_dout_[id] = 0;
        for (int lane = 0; lane < Netlist::kBramWidthNets; ++lane) {
          values_[c.outputs[static_cast<std::size_t>(lane)]] = 0;
        }
        break;
      case CellKind::kConst:
        values_[c.outputs[0]] = c.const_value ? 1 : 0;
        break;
      case CellKind::kInput:
        // keep whatever the testbench set
        break;
      default:
        break;
    }
  }
  needs_eval_ = true;
  eval();
}

void RefSim::set_input(std::size_t port, bool v) {
  VSCRUB_CHECK(port < input_values_.size(), "input port out of range");
  if (input_values_[port] == static_cast<u8>(v)) return;
  input_values_[port] = v ? 1 : 0;
  values_[nl_->cell(nl_->input_cells()[port]).outputs[0]] = v ? 1 : 0;
  needs_eval_ = true;
}

void RefSim::set_inputs_u64(u64 bits) {
  const std::size_t n = std::min<std::size_t>(64, nl_->num_inputs());
  for (std::size_t i = 0; i < n; ++i) set_input(i, (bits >> i) & 1);
}

void RefSim::eval_cell(CellId id) {
  const Cell& c = nl_->cell(id);
  switch (c.kind) {
    case CellKind::kLut: {
      unsigned index = 0;
      for (unsigned i = 0; i < c.num_inputs; ++i) {
        index |= static_cast<unsigned>(values_[c.inputs[i]]) << i;
      }
      values_[c.outputs[0]] = (c.lut_truth >> index) & 1;
      break;
    }
    case CellKind::kSrl16: {
      unsigned addr = 0;
      for (unsigned i = 0; i < 4; ++i) {
        const NetId a = c.inputs[2 + i];
        if (a != kNoNet) addr |= static_cast<unsigned>(values_[a]) << i;
      }
      values_[c.outputs[0]] = (srl_state_[id] >> addr) & 1;
      break;
    }
    case CellKind::kOutput:
      // Output ports just observe their source net.
      break;
    default:
      break;
  }
}

void RefSim::eval() {
  if (!needs_eval_) return;
  for (CellId id : comb_order_) eval_cell(id);
  needs_eval_ = false;
}

void RefSim::clock() {
  eval();
  // Sample everything first, then commit, so all updates see pre-edge values.
  struct FfUpdate {
    NetId out;
    u8 value;
  };
  std::vector<FfUpdate> ff_updates;
  std::vector<std::pair<CellId, u16>> srl_updates;
  struct BramUpdate {
    CellId cell;
    bool we;
    u8 addr;
    u16 din;
  };
  std::vector<BramUpdate> bram_updates;

  auto val = [&](NetId n, bool dflt) -> bool {
    return n == kNoNet ? dflt : values_[n] != 0;
  };

  for (CellId id = 0; id < nl_->cell_count(); ++id) {
    const Cell& c = nl_->cell(id);
    switch (c.kind) {
      case CellKind::kFf: {
        const bool ce = val(c.inputs[1], /*dflt=*/true);
        const bool sr = val(c.inputs[2], /*dflt=*/false);
        if (sr) {
          ff_updates.push_back({c.outputs[0], 0});
        } else if (ce) {
          ff_updates.push_back({c.outputs[0], values_[c.inputs[0]]});
        }
        break;
      }
      case CellKind::kSrl16: {
        const bool ce = val(c.inputs[1], /*dflt=*/true);
        if (ce) {
          const u16 next = static_cast<u16>(
              (srl_state_[id] << 1) | values_[c.inputs[0]]);
          srl_updates.emplace_back(id, next);
        }
        break;
      }
      case CellKind::kBram: {
        const bool we = val(c.inputs[0], /*dflt=*/false);
        u8 addr = 0;
        for (unsigned i = 0; i < 8; ++i) {
          if (val(c.inputs[1 + i], false)) addr |= static_cast<u8>(1u << i);
        }
        u16 din = 0;
        for (unsigned i = 0; i < 16; ++i) {
          if (val(c.inputs[9 + i], false)) din |= static_cast<u16>(1u << i);
        }
        bram_updates.push_back({id, we, addr, din});
        break;
      }
      default:
        break;
    }
  }

  for (const FfUpdate& u : ff_updates) values_[u.out] = u.value;
  for (const auto& [id, next] : srl_updates) srl_state_[id] = next;
  for (const BramUpdate& u : bram_updates) {
    auto& mem = bram_mem_[u.cell];
    if (u.we) mem[u.addr] = u.din;
    bram_dout_[u.cell] = u.we ? u.din : mem[u.addr];  // WRITE_FIRST
    const Cell& c = nl_->cell(u.cell);
    for (int lane = 0; lane < Netlist::kBramWidthNets; ++lane) {
      values_[c.outputs[static_cast<std::size_t>(lane)]] =
          (bram_dout_[u.cell] >> lane) & 1;
    }
  }
  needs_eval_ = true;
  eval();
}

bool RefSim::output(std::size_t port) const {
  const Cell& c = nl_->cell(nl_->output_cells()[port]);
  return values_[c.inputs[0]] != 0;
}

u64 RefSim::outputs_u64() const {
  const std::size_t n = std::min<std::size_t>(64, nl_->num_outputs());
  u64 bits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (output(i)) bits |= u64{1} << i;
  }
  return bits;
}

}  // namespace vscrub
