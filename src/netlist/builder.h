// Word-level construction helpers on top of the LUT-level netlist: adders,
// multipliers, counters, LFSRs — the building blocks of the paper's test
// designs.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace vscrub {

/// A little-endian bus of nets (bit 0 = LSB).
using Bus = std::vector<NetId>;

class Builder {
 public:
  explicit Builder(Netlist& nl) : nl_(nl) {}

  Netlist& netlist() { return nl_; }

  // ---- ports ----------------------------------------------------------------
  Bus input_bus(const std::string& prefix, std::size_t width);
  void output_bus(const std::string& prefix, const Bus& bus);

  // ---- bitwise --------------------------------------------------------------
  NetId not_(NetId a);
  NetId and_(NetId a, NetId b);
  NetId or_(NetId a, NetId b);
  NetId xor_(NetId a, NetId b);
  NetId xor3(NetId a, NetId b, NetId c);
  NetId mux2(NetId sel, NetId a0, NetId a1);  ///< sel ? a1 : a0
  NetId maj3(NetId a, NetId b, NetId c);
  NetId xor_reduce(const Bus& bus);
  NetId or_reduce(const Bus& bus);
  NetId and_reduce(const Bus& bus);

  // ---- arithmetic -----------------------------------------------------------
  /// Ripple-carry sum of equal-width buses; result has width+1 bits unless
  /// `keep_width`.
  Bus add(const Bus& a, const Bus& b, bool keep_width = false);
  /// Increment by constant 1 (counter step).
  Bus increment(const Bus& a);
  /// Two's-complement subtraction a - b (result truncated to |a| bits).
  Bus sub(const Bus& a, const Bus& b);
  /// Unsigned array multiplier; result has |a|+|b| bits. `pipeline_rows`
  /// inserts a register rank every N partial-product rows (0 = combinational).
  Bus multiply(const Bus& a, const Bus& b, int pipeline_rows = 0, NetId ce = kNoNet);
  /// a == b (single net).
  NetId equals(const Bus& a, const Bus& b);
  /// Zero-extends (or truncates) a bus to `width` bits.
  Bus zext(const Bus& a, std::size_t width);

  // ---- sequential -----------------------------------------------------------
  Bus register_bus(const Bus& d, NetId ce = kNoNet, NetId sr = kNoNet,
                   u64 init = 0);
  /// Free-running binary counter of `width` bits starting at `init`.
  Bus counter(std::size_t width, u64 init = 0, NetId ce = kNoNet,
              NetId sr = kNoNet);
  /// Galois LFSR, `width` 2..64, taps as a bit mask (bit i set = tap at i).
  /// Uses the maximal-length default polynomial when taps == 0.
  Bus lfsr(std::size_t width, u64 taps = 0, u64 init = 1, NetId ce = kNoNet);
  /// Shift-register delay line of `depth` cycles built from SRL16 sites.
  NetId delay_srl(NetId d, int depth, NetId ce = kNoNet);
  /// Single pipeline register.
  NetId add_reg(NetId d, NetId ce = kNoNet);

  Bus const_bus(u64 value, std::size_t width);

 private:
  Netlist& nl_;
};

/// Maximal-length Galois LFSR tap masks for a few widths used by the designs.
u64 default_lfsr_taps(std::size_t width);

}  // namespace vscrub
