// Design rule checks run before place-and-route.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace vscrub {

struct DrcReport {
  std::vector<std::string> errors;
  std::vector<std::string> warnings;
  bool ok() const { return errors.empty(); }
};

/// Structural checks: every required pin connected, every net driven,
/// arities legal, no combinational cycles, ports named uniquely.
DrcReport run_drc(const Netlist& nl);

}  // namespace vscrub
