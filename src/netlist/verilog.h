// Structural Verilog export: lets designs built with the vscrub builder (or
// RadDRC/TMR-transformed variants) be taken to a real FPGA toolchain.
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace vscrub {

/// Emits synthesizable structural Verilog-2001 for `nl`: LUTs as `assign`
/// case expressions, FFs/SRL16s/BRAMs as behavioural always-blocks with
/// init values, single clock `clk` and active-high synchronous reset
/// handled per-FF via its SR net. Port names are sanitized ([x] -> _x_).
std::string export_verilog(const Netlist& nl);

/// Writes export_verilog(nl) to `path`.
void write_verilog(const Netlist& nl, const std::string& path);

}  // namespace vscrub
