// Reference (netlist-level) simulator. Semantics here are the contract that
// the fabric simulator must reproduce bit-exactly for an uncorrupted
// configuration; the PnR equivalence tests and the golden-trace cache both
// lean on it.
//
// Clocking model (shared with FabricSim):
//   * eval(): settle combinational logic for the current inputs and state.
//   * Outputs observed *after* eval, *before* clock — output(t) =
//     f(state(t), input(t)).
//   * clock(): simultaneously update all FFs, SRL16 contents and BRAMs from
//     the settled pre-edge values.
//   * BRAM is WRITE_FIRST with a registered output: dout_reg <= we ? din :
//     mem[addr]; the write (if we) happens the same edge.
//   * SRL16 output is combinational in the tap address, sequential in the
//     shifting contents.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace vscrub {

class RefSim {
 public:
  /// Throws Error if the netlist has a combinational cycle.
  explicit RefSim(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  /// Restores all sequential state to its initialization value and settles.
  void reset();

  void set_input(std::size_t port, bool v);
  /// Settles combinational logic. Idempotent until inputs/state change.
  void eval();
  /// Clock edge: commit next state, then settle.
  void clock();
  /// set-inputs helper: applies up to 64 input bits from a word.
  void set_inputs_u64(u64 bits);

  bool output(std::size_t port) const;
  /// First min(64, num_outputs) output bits packed LSB-first.
  u64 outputs_u64() const;

  bool net_value(NetId n) const { return values_[n] != 0; }

 private:
  void eval_cell(CellId id);

  const Netlist* nl_;
  std::vector<u8> values_;          // per net
  std::vector<CellId> comb_order_;  // topological order of comb cells
  std::vector<u8> input_values_;    // per input port
  std::vector<u16> srl_state_;      // per cell (0 for non-SRL)
  std::vector<std::vector<u16>> bram_mem_;  // per cell
  std::vector<u16> bram_dout_;      // per cell
  bool needs_eval_ = true;
};

}  // namespace vscrub
