#include "netlist/builder.h"

#include <algorithm>

namespace vscrub {
namespace {

// LUT truth tables, input 0 = LSB of the index.
constexpr u16 kNot1 = 0x1;
constexpr u16 kAnd2 = 0x8;
constexpr u16 kOr2 = 0xE;
constexpr u16 kXor2 = 0x6;
constexpr u16 kXor3 = 0x96;
constexpr u16 kXor4 = 0x6996;
constexpr u16 kMaj3 = 0xE8;
constexpr u16 kMux2 = 0xCA;  // inputs (a0, a1, sel): sel ? a1 : a0
constexpr u16 kOr3 = 0xFE;
constexpr u16 kOr4 = 0xFFFE;
constexpr u16 kAnd3 = 0x80;
constexpr u16 kAnd4 = 0x8000;

}  // namespace

u64 default_lfsr_taps(std::size_t width) {
  // Maximal-length Fibonacci tap masks (polynomial exponent e -> bit e-1).
  switch (width) {
    case 2: return (1ull << 1) | 1;
    case 3: return (1ull << 2) | (1ull << 1);
    case 4: return (1ull << 3) | (1ull << 2);
    case 6: return (1ull << 5) | (1ull << 4);
    case 8: return (1ull << 7) | (1ull << 5) | (1ull << 4) | (1ull << 3);
    case 16: return (1ull << 15) | (1ull << 14) | (1ull << 12) | (1ull << 3);
    case 18: return (1ull << 17) | (1ull << 10);
    case 20: return (1ull << 19) | (1ull << 16);
    case 24: return (1ull << 23) | (1ull << 22) | (1ull << 21) | (1ull << 16);
    case 32: return (1ull << 31) | (1ull << 21) | (1ull << 1) | 1;
    case 34: return (1ull << 33) | (1ull << 26) | (1ull << 1) | 1;
    case 36: return (1ull << 35) | (1ull << 24);
    case 48: return (1ull << 47) | (1ull << 46) | (1ull << 20) | (1ull << 19);
    case 54: return (1ull << 53) | (1ull << 52) | (1ull << 17) | (1ull << 16);
    case 64: return (1ull << 63) | (1ull << 62) | (1ull << 60) | (1ull << 59);
    case 72: break;  // handled by caller for width > 64 masks
    default: break;
  }
  // Fallback (not necessarily maximal, but deterministic and well-mixed).
  VSCRUB_CHECK(width >= 2 && width <= 64, "default taps defined for 2..64");
  return (1ull << (width - 1)) | (1ull << (width - 3)) | 1;
}

Bus Builder::input_bus(const std::string& prefix, std::size_t width) {
  Bus bus(width);
  for (std::size_t i = 0; i < width; ++i) {
    bus[i] = nl_.add_input(prefix + "[" + std::to_string(i) + "]");
  }
  return bus;
}

void Builder::output_bus(const std::string& prefix, const Bus& bus) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    nl_.add_output(prefix + "[" + std::to_string(i) + "]", bus[i]);
  }
}

namespace {
bool net_const(const Netlist& nl, NetId n, bool& value) {
  if (n == kNoNet) return false;
  const Cell& driver = nl.cell(nl.net(n).driver);
  if (driver.kind != CellKind::kConst) return false;
  value = driver.const_value;
  return true;
}
}  // namespace

NetId Builder::not_(NetId a) {
  bool v;
  if (net_const(nl_, a, v)) return nl_.const_net(!v);
  return nl_.add_lut(kNot1, {a});
}

NetId Builder::and_(NetId a, NetId b) {
  bool v;
  if (net_const(nl_, a, v)) return v ? b : nl_.const_net(false);
  if (net_const(nl_, b, v)) return v ? a : nl_.const_net(false);
  if (a == b) return a;
  return nl_.add_lut(kAnd2, {a, b});
}

NetId Builder::or_(NetId a, NetId b) {
  bool v;
  if (net_const(nl_, a, v)) return v ? nl_.const_net(true) : b;
  if (net_const(nl_, b, v)) return v ? nl_.const_net(true) : a;
  if (a == b) return a;
  return nl_.add_lut(kOr2, {a, b});
}

NetId Builder::xor_(NetId a, NetId b) {
  bool v;
  if (net_const(nl_, a, v)) return v ? not_(b) : b;
  if (net_const(nl_, b, v)) return v ? not_(a) : a;
  if (a == b) return nl_.const_net(false);
  return nl_.add_lut(kXor2, {a, b});
}

NetId Builder::xor3(NetId a, NetId b, NetId c) {
  bool v;
  if (net_const(nl_, a, v)) return v ? not_(xor_(b, c)) : xor_(b, c);
  if (net_const(nl_, b, v)) return v ? not_(xor_(a, c)) : xor_(a, c);
  if (net_const(nl_, c, v)) return v ? not_(xor_(a, b)) : xor_(a, b);
  return nl_.add_lut(kXor3, {a, b, c});
}

NetId Builder::maj3(NetId a, NetId b, NetId c) {
  bool v;
  if (net_const(nl_, a, v)) return v ? or_(b, c) : and_(b, c);
  if (net_const(nl_, b, v)) return v ? or_(a, c) : and_(a, c);
  if (net_const(nl_, c, v)) return v ? or_(a, b) : and_(a, b);
  return nl_.add_lut(kMaj3, {a, b, c});
}

NetId Builder::mux2(NetId sel, NetId a0, NetId a1) {
  bool v;
  if (net_const(nl_, sel, v)) return v ? a1 : a0;
  if (a0 == a1) return a0;
  if (net_const(nl_, a1, v)) return v ? or_(sel, a0) : and_(not_(sel), a0);
  if (net_const(nl_, a0, v)) return v ? or_(not_(sel), a1) : and_(sel, a1);
  return nl_.add_lut(kMux2, {a0, a1, sel});
}

NetId Builder::xor_reduce(const Bus& bus) {
  VSCRUB_CHECK(!bus.empty(), "xor_reduce of empty bus");
  Bus level = bus;
  while (level.size() > 1) {
    Bus next;
    std::size_t i = 0;
    for (; i + 4 <= level.size(); i += 4) {
      next.push_back(nl_.add_lut(
          kXor4, {level[i], level[i + 1], level[i + 2], level[i + 3]}));
    }
    if (level.size() - i == 3) {
      next.push_back(xor3(level[i], level[i + 1], level[i + 2]));
      i += 3;
    } else if (level.size() - i == 2) {
      next.push_back(xor_(level[i], level[i + 1]));
      i += 2;
    } else if (level.size() - i == 1) {
      next.push_back(level[i]);
      ++i;
    }
    level = std::move(next);
  }
  return level[0];
}

NetId Builder::or_reduce(const Bus& bus) {
  VSCRUB_CHECK(!bus.empty(), "or_reduce of empty bus");
  Bus level = bus;
  while (level.size() > 1) {
    Bus next;
    std::size_t i = 0;
    for (; i + 4 <= level.size(); i += 4) {
      next.push_back(nl_.add_lut(
          kOr4, {level[i], level[i + 1], level[i + 2], level[i + 3]}));
    }
    if (level.size() - i == 3) {
      next.push_back(nl_.add_lut(kOr3, {level[i], level[i + 1], level[i + 2]}));
      i += 3;
    } else if (level.size() - i == 2) {
      next.push_back(or_(level[i], level[i + 1]));
      i += 2;
    } else if (level.size() - i == 1) {
      next.push_back(level[i]);
      ++i;
    }
    level = std::move(next);
  }
  return level[0];
}

NetId Builder::and_reduce(const Bus& bus) {
  VSCRUB_CHECK(!bus.empty(), "and_reduce of empty bus");
  Bus level = bus;
  while (level.size() > 1) {
    Bus next;
    std::size_t i = 0;
    for (; i + 4 <= level.size(); i += 4) {
      next.push_back(nl_.add_lut(
          kAnd4, {level[i], level[i + 1], level[i + 2], level[i + 3]}));
    }
    if (level.size() - i == 3) {
      next.push_back(nl_.add_lut(kAnd3, {level[i], level[i + 1], level[i + 2]}));
      i += 3;
    } else if (level.size() - i == 2) {
      next.push_back(and_(level[i], level[i + 1]));
      i += 2;
    } else if (level.size() - i == 1) {
      next.push_back(level[i]);
      ++i;
    }
    level = std::move(next);
  }
  return level[0];
}

Bus Builder::add(const Bus& a, const Bus& b, bool keep_width) {
  VSCRUB_CHECK(a.size() == b.size(), "add: width mismatch");
  Bus sum;
  sum.reserve(a.size() + 1);
  NetId carry = nl_.const_net(false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum.push_back(xor3(a[i], b[i], carry));
    if (i + 1 < a.size() || !keep_width) {
      carry = maj3(a[i], b[i], carry);
    }
  }
  if (!keep_width) sum.push_back(carry);
  return sum;
}

Bus Builder::sub(const Bus& a, const Bus& b) {
  VSCRUB_CHECK(a.size() == b.size(), "sub: width mismatch");
  // a + ~b + 1 via a full-adder chain with carry-in 1.
  Bus out;
  out.reserve(a.size());
  NetId carry = nl_.const_net(true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const NetId nb = not_(b[i]);
    out.push_back(xor3(a[i], nb, carry));
    if (i + 1 < a.size()) carry = maj3(a[i], nb, carry);
  }
  return out;
}

Bus Builder::increment(const Bus& a) {
  Bus out;
  out.reserve(a.size());
  NetId carry = nl_.const_net(true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(xor_(a[i], carry));
    if (i + 1 < a.size()) carry = and_(a[i], carry);
  }
  return out;
}

Bus Builder::multiply(const Bus& a, const Bus& b, int pipeline_rows, NetId ce) {
  VSCRUB_CHECK(!a.empty() && !b.empty(), "multiply: empty operand");
  const std::size_t out_width = a.size() + b.size();
  Bus acc = const_bus(0, out_width);
  Bus aa = a;
  Bus bb = b;
  for (std::size_t j = 0; j < b.size(); ++j) {
    Bus addend = const_bus(0, out_width);
    for (std::size_t i = 0; i < a.size(); ++i) {
      addend[i + j] = and_(aa[i], bb[j]);
    }
    acc = add(acc, addend, /*keep_width=*/true);
    if (pipeline_rows > 0 && (j + 1) % static_cast<std::size_t>(pipeline_rows) == 0 &&
        j + 1 < b.size()) {
      acc = register_bus(acc, ce);
      aa = register_bus(aa, ce);
      // Only the not-yet-consumed multiplier bits need delaying.
      for (std::size_t k = j + 1; k < bb.size(); ++k) {
        bb[k] = add_reg(bb[k], ce);
      }
    }
  }
  return acc;
}

NetId Builder::equals(const Bus& a, const Bus& b) {
  VSCRUB_CHECK(a.size() == b.size(), "equals: width mismatch");
  Bus eq_bits;
  eq_bits.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    eq_bits.push_back(not_(xor_(a[i], b[i])));
  }
  return and_reduce(eq_bits);
}

Bus Builder::zext(const Bus& a, std::size_t width) {
  Bus out = a;
  if (out.size() > width) {
    out.resize(width);
  } else {
    while (out.size() < width) out.push_back(nl_.const_net(false));
  }
  return out;
}

Bus Builder::register_bus(const Bus& d, NetId ce, NetId sr, u64 init) {
  Bus q;
  q.reserve(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    q.push_back(nl_.add_ff(d[i], (init >> i) & 1, ce, sr));
  }
  return q;
}

Bus Builder::counter(std::size_t width, u64 init, NetId ce, NetId sr) {
  VSCRUB_CHECK(width >= 1 && width <= 64, "counter width 1..64");
  // Feedback construction: create the state FFs with a placeholder D, build
  // the increment logic on their outputs, then rewire each D input.
  const NetId placeholder = nl_.const_net(false);
  Bus q;
  q.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    q.push_back(nl_.add_ff(placeholder, (init >> i) & 1, ce, sr));
  }
  const Bus next = increment(q);
  for (std::size_t i = 0; i < width; ++i) {
    nl_.rewire_input(nl_.net(q[i]).driver, 0, next[i]);
  }
  return q;
}

Bus Builder::lfsr(std::size_t width, u64 taps, u64 init, NetId ce) {
  VSCRUB_CHECK(width >= 2 && width <= 64, "lfsr width 2..64");
  if (taps == 0) taps = default_lfsr_taps(width);
  VSCRUB_CHECK(init != 0, "lfsr must not start in the all-zero state");
  const NetId placeholder = nl_.const_net(false);
  Bus q;
  q.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    q.push_back(nl_.add_ff(placeholder, (init >> i) & 1, ce));
  }
  // Fibonacci form: feedback = XOR of tapped state bits; shift left.
  Bus tapped;
  for (std::size_t i = 0; i < width; ++i) {
    if ((taps >> i) & 1) tapped.push_back(q[i]);
  }
  VSCRUB_CHECK(!tapped.empty(), "lfsr needs at least one tap");
  const NetId fb = xor_reduce(tapped);
  nl_.rewire_input(nl_.net(q[0]).driver, 0, fb);
  for (std::size_t i = 1; i < width; ++i) {
    nl_.rewire_input(nl_.net(q[i]).driver, 0, q[i - 1]);
  }
  return q;
}

NetId Builder::add_reg(NetId d, NetId ce) { return nl_.add_ff(d, false, ce); }

NetId Builder::delay_srl(NetId d, int depth, NetId ce) {
  VSCRUB_CHECK(depth >= 1, "delay must be >= 1");
  NetId cur = d;
  while (depth > 0) {
    const int step = std::min(depth, 16);
    // Tap address = step-1, constant bits.
    std::array<NetId, 4> addr{};
    for (int b = 0; b < 4; ++b) {
      addr[static_cast<std::size_t>(b)] = nl_.const_net(((step - 1) >> b) & 1);
    }
    cur = nl_.add_srl16(cur, addr, ce);
    depth -= step;
  }
  return cur;
}

Bus Builder::const_bus(u64 value, std::size_t width) {
  Bus bus(width);
  for (std::size_t i = 0; i < width; ++i) {
    bus[i] = nl_.const_net((value >> i) & 1);
  }
  return bus;
}

}  // namespace vscrub
