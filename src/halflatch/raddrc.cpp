#include "halflatch/raddrc.h"

#include "sim/harness.h"

namespace vscrub {

RadDrcReport raddrc_analyze(const PlacedDesign& design) {
  RadDrcReport report;
  report.total_halflatch_sites = design.space->geometry().halflatch_site_count();
  for (const HalfLatchUse& use : design.halflatch_uses) {
    if (use.critical) {
      ++report.critical_uses;
    } else {
      ++report.noncritical_uses;
    }
  }
  return report;
}

HalfLatchTrialResult halflatch_upset_trial(const PlacedDesign& design,
                                           u64 trials, u64 seed,
                                           u32 warmup_cycles,
                                           u32 observe_cycles) {
  HalfLatchTrialResult result;
  const DeviceGeometry& geom = design.space->geometry();
  FabricSim sim(design.space);
  DesignHarness harness(design, sim);
  const auto golden = DesignHarness::reference_trace(
      *design.netlist, warmup_cycles + observe_cycles);
  Rng rng(seed);
  harness.configure();

  for (u64 trial = 0; trial < trials; ++trial) {
    ++result.trials;
    // Strike a random half-latch anywhere on the device (the beam does not
    // know which sites the design uses).
    const u32 t = static_cast<u32>(rng.uniform(geom.tile_count()));
    const u8 pin = static_cast<u8>(rng.uniform(kImuxPins));
    const TileCoord tile = geom.tile_coord(t);
    sim.flip_halflatch(tile, pin);

    bool failed = false;
    for (u32 c = 0; c < warmup_cycles + observe_cycles; ++c) {
      harness.step();
      if (c < warmup_cycles) continue;
      if (!(harness.last_outputs() == golden[c])) {
        failed = true;
        break;
      }
    }
    if (failed) ++result.output_failures;

    // Full reconfiguration: the only reliable half-latch recovery (§III-C).
    harness.configure();
  }
  return result;
}

}  // namespace vscrub
