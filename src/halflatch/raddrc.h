// RadDRC: the half-latch analysis and removal tool (paper §III-C). The
// removal itself is a PnR policy (HalfLatchPolicy::kLutRomConstants /
// kExternalConstants); this module provides the analysis report and the
// upset-trial harness that quantifies mitigation effectiveness (the paper's
// "mitigated designs were found to be 100X [more] resistant to failure").
#pragma once

#include "common/rng.h"
#include "pnr/placed_design.h"

namespace vscrub {

struct RadDrcReport {
  std::size_t critical_uses = 0;     ///< CE/SR/SRL-address half-latches
  std::size_t noncritical_uses = 0;  ///< redundantly-encoded LUT inputs
  std::size_t total_halflatch_sites = 0;  ///< physical sites on the device
  /// Fraction of half-latch sites whose upset can change design behaviour.
  double critical_site_fraction() const {
    return total_halflatch_sites
               ? static_cast<double>(critical_uses) /
                     static_cast<double>(total_halflatch_sites)
               : 0.0;
  }
};

/// Analyzes a placed design's half-latch dependencies.
RadDrcReport raddrc_analyze(const PlacedDesign& design);

struct HalfLatchTrialResult {
  u64 trials = 0;
  u64 output_failures = 0;
  double failure_rate() const {
    return trials ? static_cast<double>(output_failures) /
                        static_cast<double>(trials)
                  : 0.0;
  }
};

/// Upset trial: repeatedly flip a random half-latch, run the design against
/// its golden trace, record whether outputs fail, then fully reconfigure
/// (the only reliable recovery). Comparing this rate between a design
/// compiled with half-latches and its RadDRC-mitigated twin reproduces the
/// paper's mitigation-effectiveness experiment.
HalfLatchTrialResult halflatch_upset_trial(const PlacedDesign& design,
                                           u64 trials, u64 seed = 31,
                                           u32 warmup_cycles = 48,
                                           u32 observe_cycles = 64);

}  // namespace vscrub
