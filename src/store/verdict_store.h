// Content-addressed campaign-verdict store: a file-backed cache of per-bit
// injection verdicts, keyed by what the verdict actually depends on (arch
// fingerprint, stimulus hash, frame content hash, influence-set hash, bit
// index) rather than by which campaign produced it. Re-running an unchanged
// design replays every verdict from disk; re-running a *changed* design
// re-injects only the bits whose keys moved and reuses the rest.
//
// Durability model: verdicts live in 16 shard files ("VVS1" records through
// bitstream/record_io, so every shard is magic-tagged and CRC-32-trailed and
// written atomically via tmp+rename). A shard that fails its magic, CRC or
// count guard is dropped wholesale — a corrupt, truncated or hostile record
// can only ever degrade to cache misses, never serve a wrong verdict — and
// is rewritten clean (with whatever entries survived elsewhere plus this
// run's fresh verdicts) on the next flush().
//
// Concurrency model: one store instance may be shared by concurrent
// campaigns (the vscrubd serving layer runs every request against a single
// process-wide store). find() takes a shared lock on the merged maps and,
// on a miss there, probes the pending-put buffer — so one client's fresh
// verdicts are visible to another *before* any flush; when a flush completed
// between the two probes (flush-epoch check) the maps are re-probed once, so
// a recorded verdict is never invisible. put() only touches the pending
// buffer. flush() holds the exclusive maps lock only for the in-memory
// merge, then downgrades to a shared lock for the shard-file disk writes —
// concurrent find() probes are never blocked on disk I/O — and is itself
// serialized against concurrent flushes.
#pragma once

#include <array>
#include <atomic>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace vscrub {

/// 128-bit content-addressed key. Two independent 64-bit digests: campaigns
/// put millions of verdicts in one store, and a 64-bit key would make
/// birthday collisions — i.e. silently wrong verdicts — plausible.
struct VerdictKey {
  u64 hi = 0;
  u64 lo = 0;
  bool operator==(const VerdictKey&) const = default;
};

struct VerdictKeyHash {
  std::size_t operator()(const VerdictKey& k) const {
    return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9E3779B97F4A7C15ULL));
  }
};

/// The cached outcome of one injection — exactly the fields of an
/// InjectionResult that are a function of the flipped bit (modeled time is
/// recomputed from the live options instead of stored).
struct StoredVerdict {
  bool output_error = false;
  bool persistent = false;
  u32 first_error_cycle = 0;
  u64 error_output_mask_lo = 0;
  bool operator==(const StoredVerdict&) const = default;
};

class VerdictStore {
 public:
  static constexpr u32 kShards = 16;

  /// Opens (creating the directory if needed) and loads every readable
  /// shard. Unreadable shards are counted in corrupt_shards(), dropped, and
  /// queued for a clean rewrite on the next flush().
  explicit VerdictStore(std::string dir);

  /// Lookup: the merged shard maps first, then (on a miss) the pending-put
  /// buffer, so concurrent campaigns see each other's fresh verdicts without
  /// waiting for a flush. Thread-safe against concurrent find()/put()/
  /// flush(); returns a copy because a concurrent flush may rehash the maps.
  std::optional<StoredVerdict> find(const VerdictKey& key) const;

  /// Buffers a fresh verdict for the next flush(). Thread-safe.
  void put(const VerdictKey& key, const StoredVerdict& v);

  /// Merges buffered puts into the in-memory maps and atomically rewrites
  /// every dirty shard. Returns the number of entries newly written.
  /// Thread-safe: concurrent flushes serialize, concurrent find()/put()
  /// proceed against a consistent snapshot.
  std::size_t flush();

  /// Entries currently servable from the merged maps (excludes pending).
  std::size_t size() const;
  /// Shards dropped at open time (magic/CRC/count-guard failures).
  u32 corrupt_shards() const { return corrupt_shards_; }

  const std::string& dir() const { return dir_; }
  static u32 shard_of(const VerdictKey& key) {
    return static_cast<u32>(key.hi & (kShards - 1));
  }
  std::string shard_path(u32 shard) const;

 private:
  std::string dir_;
  /// Guards shards_/dirty_: shared for find()/size(), exclusive for the
  /// flush() merge-and-rewrite.
  mutable std::shared_mutex maps_mutex_;
  std::array<std::unordered_map<VerdictKey, StoredVerdict, VerdictKeyHash>,
             kShards>
      shards_;
  std::array<bool, kShards> dirty_{};
  u32 corrupt_shards_ = 0;

  mutable std::mutex pending_mutex_;
  std::unordered_map<VerdictKey, StoredVerdict, VerdictKeyHash> pending_;
  /// Bumped once per completed flush merge; lets find() detect that a flush
  /// moved entries from pending_ into the maps between its two probes.
  mutable std::atomic<u64> flush_epoch_{0};
  /// Serializes whole flush() calls (two flushes writing one shard file
  /// concurrently would race on the tmp path).
  std::mutex flush_mutex_;
};

/// Summary of the last completed campaign against a store directory: the
/// key-plan fingerprints, the per-frame content hashes (what delta
/// re-campaigns diff against), and the headline results the warm run is
/// compared to. One "VSMF1" record per (device, design) pair.
struct CampaignManifest {
  u64 arch_fingerprint = 0;
  u64 stimulus_hash = 0;
  std::string design_name;
  std::string device_name;
  u64 universe_bits = 0;  ///< size of the injected bit universe
  u64 sample_bits = 0;
  u64 sample_seed = 0;
  u64 injections = 0;
  u64 failures = 0;
  u64 persistent = 0;
  u64 sensitive_digest = 0;  ///< CampaignResult::sensitive_digest of that run
  double wall_seconds = 0.0;
  std::vector<u64> frame_hashes;  ///< per global frame, from the key plan
};

/// Manifest file path inside a store directory (names are sanitized).
std::string campaign_manifest_path(const std::string& dir,
                                   const std::string& device,
                                   const std::string& design);

/// Writes the manifest atomically (tmp + rename).
void save_campaign_manifest(const std::string& path,
                            const CampaignManifest& m);

/// Loads a manifest; returns false when the file is missing or carries a
/// different magic. Throws on a corrupted (CRC-failing) record — callers
/// treat that the same as "no prior run".
bool load_campaign_manifest(const std::string& path, CampaignManifest* m);

}  // namespace vscrub
