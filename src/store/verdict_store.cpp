#include "store/verdict_store.h"

#include <bit>
#include <filesystem>
#include <utility>

#include "bitstream/record_io.h"
#include "common/log.h"

namespace vscrub {
namespace {

const std::string kShardMagic = "VVS1";
const std::string kManifestMagic = "VSMF1";

// Wire size of one shard entry: key (8+8), flags (1), first_error_cycle (4),
// error_output_mask_lo (8).
constexpr u64 kEntryBytes = 29;

std::string sanitized(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

VerdictStore::VerdictStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    VSCRUB_WARN("verdict store: cannot create ", dir_, " (", ec.message(),
                "); operating as a pure miss cache");
  }
  for (u32 s = 0; s < kShards; ++s) {
    const std::string path = shard_path(s);
    if (!record_exists(path, kShardMagic)) {
      // Missing file: empty shard. A present file with a foreign magic is a
      // corrupt store member, not someone else's data we should preserve.
      std::error_code exists_ec;
      if (std::filesystem::exists(path, exists_ec)) {
        ++corrupt_shards_;
        dirty_[s] = true;
      }
      continue;
    }
    try {
      RecordReader r(path, kShardMagic);
      const u64 n = r.get_u64();
      // Count guard before any allocation: a CRC-colliding or hostile count
      // must fail cleanly, not reserve gigabytes.
      VSCRUB_CHECK(n <= r.remaining() / kEntryBytes,
                   "verdict store: entry count larger than shard " + path);
      auto& map = shards_[s];
      map.reserve(n);
      for (u64 i = 0; i < n; ++i) {
        VerdictKey key;
        key.hi = r.get_u64();
        key.lo = r.get_u64();
        const u8 flags = r.get_u8();
        StoredVerdict v;
        v.output_error = (flags & 1) != 0;
        v.persistent = (flags & 2) != 0;
        v.first_error_cycle = r.get_u32();
        v.error_output_mask_lo = r.get_u64();
        map.insert_or_assign(key, v);
      }
    } catch (const Error& e) {
      // Corrupt shard: drop it wholesale (a failed CRC cannot vouch for any
      // entry) and rewrite it clean on the next flush.
      shards_[s].clear();
      ++corrupt_shards_;
      dirty_[s] = true;
      VSCRUB_WARN("verdict store: dropping corrupt shard ", path, " (",
                  e.what(), ")");
    }
  }
}

std::optional<StoredVerdict> VerdictStore::find(const VerdictKey& key) const {
  const u64 epoch = flush_epoch_.load(std::memory_order_acquire);
  {
    std::shared_lock lock(maps_mutex_);
    const auto& map = shards_[shard_of(key)];
    const auto it = map.find(key);
    if (it != map.end()) return it->second;
  }
  // Pending probe: verdicts another campaign produced but has not flushed
  // yet. Misses pay a mutex here; hits save a whole injection.
  {
    std::lock_guard lock(pending_mutex_);
    const auto it = pending_.find(key);
    if (it != pending_.end()) return it->second;
  }
  // A flush that completed between the two probes may have moved this key
  // from pending_ into the maps; one re-probe closes that window, and the
  // epoch check keeps the common miss path at a single atomic load.
  if (flush_epoch_.load(std::memory_order_acquire) != epoch) {
    std::shared_lock lock(maps_mutex_);
    const auto& map = shards_[shard_of(key)];
    const auto it = map.find(key);
    if (it != map.end()) return it->second;
  }
  return std::nullopt;
}

void VerdictStore::put(const VerdictKey& key, const StoredVerdict& v) {
  std::lock_guard lock(pending_mutex_);
  pending_.insert_or_assign(key, v);
}

std::size_t VerdictStore::flush() {
  std::lock_guard flush_lock(flush_mutex_);
  std::size_t stored = 0;
  {
    // pending_mutex_ is held across the whole merge: a concurrent find()
    // that misses the maps then either sees the verdict still in pending_ or
    // waits here until the merge has made it visible in the maps — there is
    // no window where a recorded verdict is in neither and gets re-simulated.
    std::scoped_lock lock(pending_mutex_, maps_mutex_);
    for (const auto& [key, v] : pending_) {
      const u32 s = shard_of(key);
      if (shards_[s].insert_or_assign(key, v).second) ++stored;
      dirty_[s] = true;
    }
    pending_.clear();
    flush_epoch_.fetch_add(1, std::memory_order_release);
  }
  // Disk writes happen under a *shared* maps lock: shards_/dirty_ are only
  // mutated by flush() (serialized by flush_mutex_), so concurrent find()
  // probes keep being served while shard files are written — a flush of a
  // large store must not stall every in-flight campaign on disk I/O.
  std::shared_lock maps_lock(maps_mutex_);
  for (u32 s = 0; s < kShards; ++s) {
    if (!dirty_[s]) continue;
    RecordWriter w(kShardMagic);
    w.put_u64(shards_[s].size());
    for (const auto& [key, v] : shards_[s]) {
      w.put_u64(key.hi);
      w.put_u64(key.lo);
      w.put_u8(static_cast<u8>((v.output_error ? 1 : 0) |
                               (v.persistent ? 2 : 0)));
      w.put_u32(v.first_error_cycle);
      w.put_u64(v.error_output_mask_lo);
    }
    try {
      w.write(shard_path(s));
      dirty_[s] = false;
    } catch (const Error& e) {
      VSCRUB_WARN("verdict store: cannot write shard ", shard_path(s), " (",
                  e.what(), ")");
    }
  }
  return stored;
}

std::size_t VerdictStore::size() const {
  std::shared_lock lock(maps_mutex_);
  std::size_t n = 0;
  for (const auto& map : shards_) n += map.size();
  return n;
}

std::string VerdictStore::shard_path(u32 shard) const {
  static const char* kHex = "0123456789abcdef";
  return dir_ + "/verdicts_" + kHex[shard & 0xF] + ".vvs";
}

std::string campaign_manifest_path(const std::string& dir,
                                   const std::string& device,
                                   const std::string& design) {
  return dir + "/manifest_" + sanitized(device) + "_" + sanitized(design) +
         ".vsmf";
}

void save_campaign_manifest(const std::string& path,
                            const CampaignManifest& m) {
  RecordWriter w(kManifestMagic);
  w.put_u64(m.arch_fingerprint);
  w.put_u64(m.stimulus_hash);
  w.put_string(m.design_name);
  w.put_string(m.device_name);
  w.put_u64(m.universe_bits);
  w.put_u64(m.sample_bits);
  w.put_u64(m.sample_seed);
  w.put_u64(m.injections);
  w.put_u64(m.failures);
  w.put_u64(m.persistent);
  w.put_u64(m.sensitive_digest);
  w.put_u64(std::bit_cast<u64>(m.wall_seconds));
  w.put_u64(m.frame_hashes.size());
  for (const u64 h : m.frame_hashes) w.put_u64(h);
  w.write(path);
}

bool load_campaign_manifest(const std::string& path, CampaignManifest* m) {
  if (!record_exists(path, kManifestMagic)) return false;
  RecordReader r(path, kManifestMagic);
  m->arch_fingerprint = r.get_u64();
  m->stimulus_hash = r.get_u64();
  m->design_name = r.get_string();
  m->device_name = r.get_string();
  m->universe_bits = r.get_u64();
  m->sample_bits = r.get_u64();
  m->sample_seed = r.get_u64();
  m->injections = r.get_u64();
  m->failures = r.get_u64();
  m->persistent = r.get_u64();
  m->sensitive_digest = r.get_u64();
  m->wall_seconds = std::bit_cast<double>(r.get_u64());
  const u64 frames_n = r.get_u64();
  VSCRUB_CHECK(frames_n <= r.remaining() / 8,
               "manifest: frame-hash count larger than record");
  m->frame_hashes.resize(frames_n);
  for (u64& h : m->frame_hashes) h = r.get_u64();
  return true;
}

}  // namespace vscrub
