// Remote verdict tier: the abstract batched lookup/publish interface a
// campaign probes *behind* its local VerdictStore. The distributed fabric
// implements it over VSRP1 (svc/remote_store.h) against the coordinator's
// process-wide store, so workers on different machines reuse each other's
// verdicts; tests implement it in-memory.
//
// Contract: a remote hit must be the exact StoredVerdict a fresh injection
// would produce (verdicts are pure functions of their content-addressed
// key), so enabling the tier never changes a campaign's results — only its
// wall clock. Implementations must be safe for concurrent batched calls
// from multiple campaign workers, and must *degrade* on transport failure:
// lookup_batch returns all-miss, publish_batch drops the batch. A dead
// coordinator costs reuse, never a campaign.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "store/verdict_store.h"

namespace vscrub {

class RemoteVerdictClient {
 public:
  virtual ~RemoteVerdictClient() = default;

  /// One round trip for a whole chunk's misses. out[i] is the verdict for
  /// keys[i] or nullopt; out.size() == keys.size() on return (resized here,
  /// so a failing transport just leaves every slot empty).
  virtual void lookup_batch(const std::vector<VerdictKey>& keys,
                            std::vector<std::optional<StoredVerdict>>* out) = 0;

  /// One round trip publishing a whole chunk's fresh verdicts. Best-effort:
  /// a failed publish is dropped silently (the verdicts are still in the
  /// local store and the campaign result).
  virtual void publish_batch(
      const std::vector<std::pair<VerdictKey, StoredVerdict>>& entries) = 0;
};

}  // namespace vscrub
