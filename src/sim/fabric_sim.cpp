#include "sim/fabric_sim.h"

#include <algorithm>
#include <bit>

#include "fabric/routing_model.h"

namespace vscrub {
namespace {

constexpr u32 kSrcKindShift = FabricSim::kSrcKindShift;
constexpr u32 kSrcPayload = FabricSim::kSrcPayload;
constexpr u32 kSrcHalfLatch = FabricSim::kSrcHalfLatch;
constexpr u32 kSrcWire = FabricSim::kSrcWire;
constexpr u32 kSrcOutput = FabricSim::kSrcOutput;
constexpr u32 kSrcZero = FabricSim::kSrcZero;
constexpr u32 kNoTile = FabricSim::kNoTile;

}  // namespace

FabricSim::FabricSim(std::shared_ptr<const ConfigSpace> space,
                     const ArchVariants& variants)
    : space_(std::move(space)), variants_(variants), cfg_(space_) {
  const DeviceGeometry& geom = space_->geometry();
  const u32 n = geom.tile_count();
  tiles_.resize(n);
  wire_val_.assign(static_cast<std::size_t>(n) * kWiresPerClb, 0);
  out_val_.assign(static_cast<std::size_t>(n) * kClbOutputs, 0);
  ff_state_.assign(static_cast<std::size_t>(n) * kFfsPerClb, 0);
  halflatch_.assign(static_cast<std::size_t>(n) * kImuxPins, 0);
  stuck_wire_.assign(static_cast<std::size_t>(n) * kWiresPerClb, 0);
  stuck_out_.assign(static_cast<std::size_t>(n) * kClbOutputs, 0);
  dirty_flag_.assign(n, 0);
  frame_dirty_.assign(space_->frame_count(), 0);
  neighbor_.assign(static_cast<std::size_t>(n) * kDirs, kNoTile);
  pin_src_.assign(static_cast<std::size_t>(n) * kImuxPins, kSrcZero);
  wire_src_.assign(static_cast<std::size_t>(n) * kWiresPerClb, kSrcZero);
  for (u32 t = 0; t < n; ++t) {
    const TileCoord tc = geom.tile_coord(t);
    for (int d = 0; d < kDirs; ++d) {
      const auto nb = geom.neighbor(tc, static_cast<Dir>(d));
      if (nb) neighbor_[static_cast<std::size_t>(t) * kDirs + static_cast<std::size_t>(d)] = geom.tile_index(*nb);
    }
  }
  bram_.resize(geom.bram_columns);
  for (auto& col : bram_) {
    col.dout.assign(geom.bram_blocks_per_column(), 0);
  }
  for (u32 t = 0; t < n; ++t) decode_full_tile(geom.tile_coord(t));
}

// ---- Decode -------------------------------------------------------------------

void FabricSim::decode_full_tile(TileCoord tc) {
  const u32 t = tidx(tc);
  decode_tile_config(cfg_, tc, tiles_[t]);
  refresh_tile_activity(t);
  mark_dirty(t);
}

void FabricSim::refresh_tile_activity(u32 t) {
  const DeviceGeometry& geom = space_->geometry();
  Tile& tl = tiles_[t];
  tl.driven_wires.clear();
  tl.connected_pins.clear();

  // Precompute pin sources.
  for (int p = 0; p < kImuxPins; ++p) {
    const PinSource src = decode_imux(tl.imux[p]);
    u32 enc = kSrcZero;
    switch (src.kind) {
      case PinSource::Kind::kHalfLatch:
        enc = kSrcHalfLatch |
              (t * static_cast<u32>(kImuxPins) + static_cast<u32>(p));
        break;
      case PinSource::Kind::kIncoming: {
        const u32 nb = neighbor_[static_cast<std::size_t>(t) * kDirs +
                                 static_cast<std::size_t>(static_cast<int>(src.from_dir))];
        if (nb == kNoTile) {
          enc = kSrcZero;
        } else {
          // The wire arriving from `from_dir` is the neighbor's out-wire in
          // direction opposite(from_dir).
          const u32 wi = (nb * static_cast<u32>(kDirs) +
                          static_cast<u32>(static_cast<int>(opposite(src.from_dir)))) *
                             kWiresPerDir +
                         src.windex;
          enc = kSrcWire | wi;
        }
        tl.connected_pins.push_back(static_cast<u8>(p));
        break;
      }
      case PinSource::Kind::kClbOutput:
        enc = kSrcOutput | (t * static_cast<u32>(kClbOutputs) + src.output);
        tl.connected_pins.push_back(static_cast<u8>(p));
        break;
    }
    pin_src_[static_cast<std::size_t>(t) * kImuxPins + static_cast<std::size_t>(p)] = enc;
  }

  // Precompute wire sources.
  bool any_wire = false;
  for (int d = 0; d < kDirs; ++d) {
    for (int w = 0; w < kWiresPerDir; ++w) {
      const int wire = d * kWiresPerDir + w;
      const WireSource src = decode_omux(static_cast<Dir>(d), w, tl.omux[wire]);
      u32 enc = kSrcZero;
      switch (src.kind) {
        case WireSource::Kind::kNone:
          break;
        case WireSource::Kind::kClbOutput:
          enc = kSrcOutput | (t * static_cast<u32>(kClbOutputs) + src.output);
          break;
        case WireSource::Kind::kIncoming: {
          const u32 nb = neighbor_[static_cast<std::size_t>(t) * kDirs +
                                   static_cast<std::size_t>(static_cast<int>(src.from_dir))];
          if (nb != kNoTile) {
            const u32 wi =
                (nb * static_cast<u32>(kDirs) +
                 static_cast<u32>(static_cast<int>(opposite(src.from_dir)))) *
                    kWiresPerDir +
                src.windex;
            enc = kSrcWire | wi;
          }
          break;
        }
      }
      wire_src_[static_cast<std::size_t>(t) * kWiresPerClb + static_cast<std::size_t>(wire)] = enc;
      if (enc != kSrcZero) {
        tl.driven_wires.push_back(static_cast<u8>(wire));
        any_wire = true;
      } else {
        // Undriven wires idle at 0 (unless stuck).
        u8 v = 0;
        const u8 stuck = stuck_wire_[static_cast<std::size_t>(t) * kWiresPerClb + static_cast<std::size_t>(wire)];
        if (stuck == 2) v = 1;
        wire_val_[static_cast<std::size_t>(t) * kWiresPerClb + static_cast<std::size_t>(wire)] = v;
      }
    }
  }

  // Local feedback: a pin selecting one of this tile's own CLB outputs
  // forces iterative settling; tiles without it settle in one pass.
  tl.has_local_feedback = false;
  for (u8 p : tl.connected_pins) {
    const u32 enc = pin_src_[static_cast<std::size_t>(t) * kImuxPins + p];
    if ((enc & ~kSrcPayload) == kSrcOutput) {
      tl.has_local_feedback = true;
      break;
    }
  }

  // Cache each LUT's input-index contribution from half-latch-fed pins (they
  // only change when a latch flips, which re-runs this refresh).
  for (int l = 0; l < kLutsPerClb; ++l) {
    u8 base = 0;
    u8 dyn = 0;
    for (int i = 0; i < kLutInputs; ++i) {
      const int pin = lut_input_pin(l, i);
      const u32 enc = pin_src_[static_cast<std::size_t>(t) * kImuxPins +
                               static_cast<std::size_t>(pin)];
      switch (enc & ~kSrcPayload) {
        case kSrcHalfLatch:
          if (halflatch_[enc & kSrcPayload]) base |= static_cast<u8>(1u << i);
          break;
        case kSrcZero:
          break;
        default:
          dyn |= static_cast<u8>(1u << i);
          break;
      }
    }
    tl.lut_base_idx[l] = base;
    tl.lut_dyn_mask[l] = dyn;
  }

  // Which LUT sites can ever produce a nonzero combinational output: a plain
  // LUT with an all-zero truth table outputs 0 for every input, so eval can
  // skip it (route-through tiles cost almost nothing). Dynamic sites
  // (SRL16/RAM16) can shift in ones at runtime and stay live.
  tl.active_lut_mask = 0;
  for (int l = 0; l < kLutsPerClb; ++l) {
    if (tl.lut_cells[l] != 0 || tl.lut_mode[l] != LutMode::kLut) {
      tl.active_lut_mask |= static_cast<u8>(1u << l);
    } else {
      out_val_[static_cast<std::size_t>(t) * kClbOutputs +
               static_cast<std::size_t>((l / 2) * 4 + (l % 2))] = 0;
    }
  }

  bool any = any_wire || tl.override_mask != 0 || tl.active_lut_mask != 0;
  if (!any) {
    for (int f = 0; f < kFfsPerClb && !any; ++f) any = tl.ff_used[f];
    for (int p = 0; p < kImuxPins && !any; ++p) any = tl.imux[p] != 0;
  }
  tl.active = any;
  if (!tl.active) {
    // An inactive tile computes nothing: force its visible values to the
    // quiescent state and let neighbors notice.
    bool changed = false;
    for (int o = 0; o < kClbOutputs; ++o) {
      auto& v = out_val_[static_cast<std::size_t>(t) * kClbOutputs + static_cast<std::size_t>(o)];
      changed |= v != 0;
      v = 0;
    }
    for (int w = 0; w < kWiresPerClb; ++w) {
      auto& v = wire_val_[static_cast<std::size_t>(t) * kWiresPerClb + static_cast<std::size_t>(w)];
      changed |= v != 0;
      v = 0;
    }
    if (changed) {
      for (int d = 0; d < kDirs; ++d) {
        const u32 nb = neighbor_[static_cast<std::size_t>(t) * kDirs + static_cast<std::size_t>(d)];
        if (nb != kNoTile) mark_dirty(nb);
      }
    }
  } else {
    // Re-sync registered outputs with FF state. If a corrupted decode ever
    // made this tile inactive, the zeroing branch above cleared its
    // registered outputs while ff_state_ kept the real values — and nothing
    // rewrites a registered output until its FF next *changes* value, so on
    // repair the desync would persist into later injections (observed as
    // thread-count-dependent campaign results).
    bool resynced = false;
    for (int f = 0; f < kFfsPerClb; ++f) {
      const std::size_t oi = static_cast<std::size_t>(t) * kClbOutputs +
                             static_cast<std::size_t>((f / 2) * 4 + 2 + (f % 2));
      const u8 v = ff_state_[static_cast<std::size_t>(t) * kFfsPerClb +
                             static_cast<std::size_t>(f)];
      if (out_val_[oi] != v) {
        out_val_[oi] = v;
        resynced = true;
      }
    }
    if (resynced) {
      mark_dirty(t);
      for (int d = 0; d < kDirs; ++d) {
        const u32 nb = neighbor_[static_cast<std::size_t>(t) * kDirs + static_cast<std::size_t>(d)];
        if (nb != kNoTile) mark_dirty(nb);
      }
    }
  }
  seq_list_stale_ = true;
  (void)geom;
}

// ---- Configuration port ---------------------------------------------------------

void FabricSim::full_configure(const Bitstream& bs) {
  VSCRUB_CHECK(&bs.space() == space_.get() ||
                   bs.space().geometry().name == space_->geometry().name,
               "bitstream geometry mismatch");
  cfg_ = bs;
  const DeviceGeometry& geom = space_->geometry();
  // Startup sequence.
  for (u32 t = 0; t < geom.tile_count(); ++t) {
    const TileCoord tc = geom.tile_coord(t);
    // Half-latches first: tile decode folds their values into its caches.
    for (int p = 0; p < kImuxPins; ++p) {
      halflatch_[static_cast<std::size_t>(t) * kImuxPins + static_cast<std::size_t>(p)] =
          halflatch_startup_value(p) ? 1 : 0;
    }
    decode_full_tile(tc);
    for (int f = 0; f < kFfsPerClb; ++f) {
      ff_state_[static_cast<std::size_t>(t) * kFfsPerClb + static_cast<std::size_t>(f)] =
          tiles_[t].ff_init[f] ? 1 : 0;
      out_val_[static_cast<std::size_t>(t) * kClbOutputs +
               static_cast<std::size_t>((f / 2) * 4 + 2 + (f % 2))] =
          ff_state_[static_cast<std::size_t>(t) * kFfsPerClb + static_cast<std::size_t>(f)];
    }
  }
  for (auto& col : bram_) std::fill(col.dout.begin(), col.dout.end(), 0);
  cycle_count_ = 0;
  // Full configuration establishes a new dirty-tracking baseline: every
  // frame now reads back exactly the image just loaded.
  clear_dirty_frames();
  eval();
}

void FabricSim::clear_dirty_frames() {
  for (u32 gf : dirty_frames_) frame_dirty_[gf] = 0;
  dirty_frames_.clear();
}

void FabricSim::mark_frame_dirty(u32 global_frame) {
  if (frame_dirty_[global_frame]) return;
  frame_dirty_[global_frame] = 1;
  dirty_frames_.push_back(global_frame);
}

void FabricSim::mark_lut_frames_dirty(u32 tile, u8 site) {
  // A LUT cell's 16 truth bits are spread one per frame across its slice's
  // 16 frames; a runtime shift/write can touch any of them.
  const u16 col = space_->geometry().tile_coord(tile).col;
  const u32 base = static_cast<u32>(col) * kFramesPerClbColumn +
                   static_cast<u32>(site / kLutsPerSlice) * kLutTruthBits;
  for (u32 f = 0; f < kLutTruthBits; ++f) mark_frame_dirty(base + f);
}

BitVector FabricSim::assemble_frame(const FrameAddress& fa) const {
  BitVector data = cfg_.frame(fa);
  if (fa.kind != ColumnKind::kClb) return data;  // BRAM contents live in cfg_
  // Substitute live LUT-cell contents for LUT-truth slots.
  if (fa.frame < kSlicesPerClb * kLutTruthBits) {
    const int slice = fa.frame / kLutTruthBits;
    const int bit = fa.frame % kLutTruthBits;
    const DeviceGeometry& geom = space_->geometry();
    for (u16 row = 0; row < geom.rows; ++row) {
      const u32 t = tidx(TileCoord{row, fa.col});
      for (int slot = 0; slot < kLutsPerSlice; ++slot) {
        const int lut = slice * kLutsPerSlice + slot;
        data.set(static_cast<u32>(row) * kBitsPerTilePerFrame +
                     static_cast<u32>(slot),
                 (tiles_[t].lut_cells[lut] >> bit) & 1);
      }
    }
  }
  return data;
}

BitVector FabricSim::read_frame(const FrameAddress& fa, bool clock_running) {
  BitVector data = assemble_frame(fa);
  if (fa.kind == ColumnKind::kBram) {
    // Readback corrupts the output registers of the blocks in this column
    // (paper §IV-A) — unless the device has the proposed shadow memory.
    if (!variants_.shadow_readback) {
      auto& col = bram_[fa.col];
      for (auto& dout : col.dout) {
        dout ^= static_cast<u16>(corrupt_rng_.next());
      }
    }
    return data;
  }
  if (variants_.zeroed_dynamic_readback &&
      fa.frame < kSlicesPerClb * kLutTruthBits) {
    // §IV-A proposal: dynamic LUT locations read back as zeros, so the
    // standard per-frame CRC is stable without masking.
    const int slice = fa.frame / kLutTruthBits;
    const DeviceGeometry& geom = space_->geometry();
    for (u16 row = 0; row < geom.rows; ++row) {
      const u32 t = tidx(TileCoord{row, fa.col});
      for (int slot = 0; slot < kLutsPerSlice; ++slot) {
        const int lut = slice * kLutsPerSlice + slot;
        if (tiles_[t].lut_mode[lut] != LutMode::kLut) {
          data.set(static_cast<u32>(row) * kBitsPerTilePerFrame +
                       static_cast<u32>(slot),
                   false);
        }
      }
    }
    return data;  // zeroed readback has no write hazard by construction
  }
  if (variants_.shadow_readback) return data;  // hazard-free shadow port
  if (clock_running && fa.frame < kSlicesPerClb * kLutTruthBits) {
    // LUT-RAM / SRL16 write-during-readback hazard: any covered dynamic LUT
    // site that is currently write-enabled returns corrupted bits.
    const int slice = fa.frame / kLutTruthBits;
    const DeviceGeometry& geom = space_->geometry();
    for (u16 row = 0; row < geom.rows; ++row) {
      const TileCoord tc{row, fa.col};
      const u32 t = tidx(tc);
      const Tile& tl = tiles_[t];
      if (!tl.clk_en[slice]) continue;
      for (int slot = 0; slot < kLutsPerSlice; ++slot) {
        const int lut = slice * kLutsPerSlice + slot;
        if (tl.lut_mode[lut] == LutMode::kLut) continue;
        const bool write_enabled =
            resolve_pin(tl, t, static_cast<u8>(ce_pin(slice)));
        if (write_enabled) {
          data.flip(static_cast<u32>(row) * kBitsPerTilePerFrame +
                    static_cast<u32>(slot));
        }
      }
    }
  }
  return data;
}

void FabricSim::write_frame(const FrameAddress& fa, const BitVector& data) {
  VSCRUB_CHECK(data.size() == space_->frame_bits(fa.kind),
               "frame size mismatch");
  // Diff against the current live content first: a write that changes
  // nothing is a no-op (no dirty mark, no decode), and only tiles whose
  // bits actually change are re-decoded — per-tile invalidation instead of
  // a whole-column re-decode on every frame write.
  const BitVector cur = assemble_frame(fa);
  if (cur == data) return;
  cfg_.frame(fa) = data;
  mark_frame_dirty(space_->global_frame_index(fa));
  if (fa.kind == ColumnKind::kBram) {
    // BRAM content is authoritative in cfg_; nothing to decode.
    return;
  }
  const DeviceGeometry& geom = space_->geometry();
  for (u16 row = 0; row < geom.rows; ++row) {
    const u32 base = static_cast<u32>(row) * kBitsPerTilePerFrame;
    u64 diff = data.word_at(base, kBitsPerTilePerFrame) ^
               cur.word_at(base, kBitsPerTilePerFrame);
    if (diff == 0) continue;
    const TileCoord tc{row, fa.col};
    const u32 t = tidx(tc);
    Tile& tl = tiles_[t];
    bool changed = false;
    while (diff != 0) {
      const u16 slot = static_cast<u16>(std::countr_zero(diff));
      diff &= diff - 1;
      const int tb = ConfigSpace::tile_bit_at(fa.frame, slot);
      if (tb < 0) continue;
      const bool v = data.get(base + slot);
      changed |= apply_tile_bit(tl, static_cast<u16>(tb), v);
    }
    if (changed) {
      refresh_tile_activity(t);
      mark_dirty(t);
      // Out-wire values may have changed sources; make sure downstream tiles
      // notice even if our recompute produces the same local values.
      for (int d = 0; d < kDirs; ++d) {
        const u32 nb = neighbor_[static_cast<std::size_t>(t) * kDirs + static_cast<std::size_t>(d)];
        if (nb != kNoTile) mark_dirty(nb);
      }
    }
  }
  eval();
}

void FabricSim::flip_config_bit(const BitAddress& addr) {
  BitVector img = assemble_frame(addr.frame);
  img.flip(addr.offset);
  write_frame(addr.frame, img);
}

bool FabricSim::config_bit(const BitAddress& addr) const {
  return assemble_frame(addr.frame).get(addr.offset);
}

void FabricSim::write_config_bit(const BitAddress& addr, bool v) {
  VSCRUB_CHECK(variants_.bit_granular_access,
               "bit-granular configuration access requires the SIV-B "
               "architecture variant");
  BitVector img = assemble_frame(addr.frame);
  if (img.get(addr.offset) == v) return;
  img.set(addr.offset, v);
  // Writing the assembled image back touches only the requested bit: every
  // other position carries its current live value.
  write_frame(addr.frame, img);
}

// ---- Harness ---------------------------------------------------------------------

void FabricSim::set_drive(TileCoord tile, u8 out_index, bool value) {
  const u32 t = tidx(tile);
  Tile& tl = tiles_[t];
  const u8 mask = static_cast<u8>(1u << out_index);
  const u8 val = static_cast<u8>(value ? mask : 0);
  if ((tl.override_mask & mask) && (tl.override_vals & mask) == val) return;
  if (!(tl.override_mask & mask)) {
    tl.override_mask |= mask;
    tl.active = true;
  }
  tl.override_vals = static_cast<u8>((tl.override_vals & ~mask) | val);
  mark_dirty(t);
}

void FabricSim::clear_drives() {
  for (u32 t = 0; t < tiles_.size(); ++t) {
    if (tiles_[t].override_mask != 0) {
      tiles_[t].override_mask = 0;
      tiles_[t].override_vals = 0;
      refresh_tile_activity(t);
      mark_dirty(t);
    }
  }
}

bool FabricSim::pin_value(TileCoord tile, u8 pin) const {
  const u32 t = tidx(tile);
  return resolve_pin(tiles_[t], t, pin);
}

bool FabricSim::output_value(TileCoord tile, u8 out) const {
  return out_val_[static_cast<std::size_t>(tidx(tile)) * kClbOutputs + out] != 0;
}

// ---- Value resolution ---------------------------------------------------------------

bool FabricSim::resolve_pin(const Tile&, u32 t, u8 pin) const {
  const u32 enc = pin_src_[static_cast<std::size_t>(t) * kImuxPins + pin];
  switch (enc & ~kSrcPayload) {
    case kSrcHalfLatch: return halflatch_[enc & kSrcPayload] != 0;
    case kSrcWire: return wire_val_[enc & kSrcPayload] != 0;
    case kSrcOutput: return out_val_[enc & kSrcPayload] != 0;
    default: return false;
  }
}

// ---- Eval ------------------------------------------------------------------------

void FabricSim::mark_dirty(u32 t) {
  if (dirty_flag_[t]) return;
  if (!tiles_[t].active) return;
  dirty_flag_[t] = 1;
  dirty_queue_.push_back(t);
}

void FabricSim::process_tile(u32 t) {
  Tile& tl = tiles_[t];
  const u32* pin_src = &pin_src_[static_cast<std::size_t>(t) * kImuxPins];
  const auto resolve = [&](int pin) -> u8 {
    const u32 enc = pin_src[pin];
    switch (enc & ~kSrcPayload) {
      case kSrcHalfLatch: return halflatch_[enc & kSrcPayload];
      case kSrcWire: return wire_val_[enc & kSrcPayload];
      case kSrcOutput: return out_val_[enc & kSrcPayload];
      default: return 0;
    }
  };

  const int max_pass = tl.has_local_feedback ? 8 : 1;
  for (int pass = 0; pass < max_pass; ++pass) {
    bool local_change = false;

    // Combinational CLB outputs.
    for (int l = 0; l < kLutsPerClb; ++l) {
      const int out = (l / 2) * 4 + (l % 2);
      const u8 mask = static_cast<u8>(1u << out);
      if (!(tl.active_lut_mask & (1u << l)) && !(tl.override_mask & mask) &&
          !have_permanent_faults_) {
        continue;  // provably constant-0 output, set at decode time
      }
      u8 v;
      if (tl.override_mask & mask) {
        v = (tl.override_vals & mask) ? 1 : 0;
      } else {
        unsigned idx = tl.lut_base_idx[l];
        u8 dyn = tl.lut_dyn_mask[l];
        while (dyn != 0) {
          const int i = std::countr_zero(dyn);
          dyn = static_cast<u8>(dyn & (dyn - 1));
          idx |= static_cast<unsigned>(resolve(lut_input_pin(l, i)) & 1) << i;
        }
        v = (tl.lut_cells[l] >> idx) & 1;
      }
      const std::size_t oi = static_cast<std::size_t>(t) * kClbOutputs + static_cast<std::size_t>(out);
      if (have_permanent_faults_ && stuck_out_[oi] != 0) {
        v = stuck_out_[oi] == 2 ? 1 : 0;
      }
      if (out_val_[oi] != v) {
        out_val_[oi] = v;
        local_change = true;
      }
    }

    // Driven out-wires (sources already reflect this pass's outputs because
    // outputs are computed first).
    for (u8 wire : tl.driven_wires) {
      const std::size_t wi = static_cast<std::size_t>(t) * kWiresPerClb + wire;
      const u32 enc = wire_src_[wi];
      u8 v = 0;
      switch (enc & ~kSrcPayload) {
        case kSrcWire: v = wire_val_[enc & kSrcPayload]; break;
        case kSrcOutput: v = out_val_[enc & kSrcPayload]; break;
        default: break;
      }
      if (have_permanent_faults_ && stuck_wire_[wi] != 0) {
        v = stuck_wire_[wi] == 2 ? 1 : 0;
      }
      if (wire_val_[wi] != v) {
        wire_val_[wi] = v;
        // Our out-wires feed the neighbor in the wire's direction.
        const u32 nb = neighbor_[static_cast<std::size_t>(t) * kDirs +
                                 static_cast<std::size_t>(wire / kWiresPerDir)];
        if (nb != kNoTile) mark_dirty(nb);
      }
    }

    if (!local_change) return;
    // With local feedback, our comb outputs may feed our own pins; iterate.
  }
  if (tl.has_local_feedback) oscillating_ = true;
}

void FabricSim::eval() {
  // FIFO processing approximates a topological sweep for ripple chains,
  // which keeps re-evaluation counts low.
  std::size_t processed = 0;
  std::size_t head = 0;
  const std::size_t bound = tiles_.size() * 64 + 4096;
  while (head < dirty_queue_.size()) {
    const u32 t = dirty_queue_[head++];
    dirty_flag_[t] = 0;
    process_tile(t);
    if (++processed > bound) {
      oscillating_ = true;
      // Drain to guarantee termination; values are garbage-but-deterministic.
      for (std::size_t i = head; i < dirty_queue_.size(); ++i) {
        dirty_flag_[dirty_queue_[i]] = 0;
      }
      break;
    }
  }
  // Head-index reset: the processed prefix is reclaimed wholesale here, so
  // the loop never pays an O(n) erase-compaction; the eval bound above
  // already caps how large the queue can grow within one sweep.
  dirty_queue_.clear();
}

// ---- Clocking ---------------------------------------------------------------------

void FabricSim::rebuild_seq_list() {
  seq_tiles_.clear();
  for (u32 t = 0; t < tiles_.size(); ++t) {
    if (tile_is_sequential(tiles_[t])) seq_tiles_.push_back(t);
  }
  seq_list_stale_ = false;
}

void FabricSim::clock() {
  eval();
  if (seq_list_stale_) rebuild_seq_list();

  // Two-phase: sample next-state for every sequential element, then commit.
  pending_ff_.clear();
  pending_srl_.clear();
  for (u32 t : seq_tiles_) {
    const Tile& tl = tiles_[t];
    for (int s = 0; s < kSlicesPerClb; ++s) {
      if (!tl.clk_en[s]) continue;
      const bool ce = resolve_pin(tl, t, static_cast<u8>(ce_pin(s)));
      const bool sr = resolve_pin(tl, t, static_cast<u8>(sr_pin(s)));
      for (int i = 0; i < kLutsPerSlice; ++i) {
        const int site = s * kLutsPerSlice + i;
        if (tl.ff_used[site]) {
          bool next;
          const std::size_t fi = static_cast<std::size_t>(t) * kFfsPerClb + static_cast<std::size_t>(site);
          if (sr) {
            next = false;
          } else if (ce) {
            next = tl.ff_byp[site]
                       ? resolve_pin(tl, t, static_cast<u8>(byp_pin(site)))
                       : out_val_[static_cast<std::size_t>(t) * kClbOutputs +
                                  static_cast<std::size_t>((site / 2) * 4 + (site % 2))] != 0;
          } else {
            next = ff_state_[fi] != 0;
          }
          pending_ff_.push_back({t, static_cast<u8>(site), next});
        }
        if (tl.lut_mode[site] == LutMode::kSrl16 && ce) {
          const bool d = resolve_pin(tl, t, static_cast<u8>(byp_pin(site)));
          const u16 next = static_cast<u16>((tl.lut_cells[site] << 1) |
                                            static_cast<u16>(d));
          pending_srl_.push_back({t, static_cast<u8>(site), next});
        } else if (tl.lut_mode[site] == LutMode::kRam16 && ce) {
          unsigned addr = 0;
          for (int b = 0; b < kLutInputs; ++b) {
            addr |= static_cast<unsigned>(resolve_pin(
                        tl, t, static_cast<u8>(lut_input_pin(site, b))))
                    << b;
          }
          const bool d = resolve_pin(tl, t, static_cast<u8>(byp_pin(site)));
          u16 next = tl.lut_cells[site];
          next = static_cast<u16>(d ? (next | (1u << addr))
                                    : (next & ~(1u << addr)));
          pending_srl_.push_back({t, static_cast<u8>(site), next});
        }
      }
    }
  }

  for (const PendingFf& p : pending_ff_) {
    const std::size_t fi = static_cast<std::size_t>(p.tile) * kFfsPerClb + p.ff;
    const u8 v = p.value ? 1 : 0;
    if (ff_state_[fi] != v) {
      ff_state_[fi] = v;
      const std::size_t oi = static_cast<std::size_t>(p.tile) * kClbOutputs +
                             static_cast<std::size_t>((p.ff / 2) * 4 + 2 + (p.ff % 2));
      out_val_[oi] = v;
      mark_dirty(p.tile);
    }
  }
  for (const PendingSrl& p : pending_srl_) {
    Tile& tl = tiles_[p.tile];
    if (tl.lut_cells[p.site] != p.value) {
      tl.lut_cells[p.site] = p.value;
      mark_dirty(p.tile);
      // Runtime LUT-cell changes are readback-visible: the frames holding
      // this site's truth bits no longer match the configured image.
      mark_lut_frames_dirty(p.tile, p.site);
    }
  }
  ++cycle_count_;
  eval();
}

void FabricSim::reset() {
  for (u32 t = 0; t < tiles_.size(); ++t) {
    const Tile& tl = tiles_[t];
    for (int f = 0; f < kFfsPerClb; ++f) {
      if (!tl.ff_used[f]) continue;
      const u8 v = tl.ff_init[f] ? 1 : 0;
      const std::size_t fi = static_cast<std::size_t>(t) * kFfsPerClb + static_cast<std::size_t>(f);
      if (ff_state_[fi] != v) {
        ff_state_[fi] = v;
        out_val_[static_cast<std::size_t>(t) * kClbOutputs +
                 static_cast<std::size_t>((f / 2) * 4 + 2 + (f % 2))] = v;
        mark_dirty(t);
      }
    }
  }
  for (auto& col : bram_) std::fill(col.dout.begin(), col.dout.end(), 0);
  oscillating_ = false;
  eval();
}

void FabricSim::restore_ff_state(const std::vector<u8>& state) {
  for (std::size_t i = 0; i < ff_state_.size(); ++i) {
    if (ff_state_[i] == state[i]) continue;
    ff_state_[i] = state[i];
    const u32 t = static_cast<u32>(i / kFfsPerClb);
    const std::size_t f = i % kFfsPerClb;
    out_val_[static_cast<std::size_t>(t) * kClbOutputs + (f / 2) * 4 + 2 +
             (f % 2)] = state[i];
    mark_dirty(t);
  }
  eval();
}

// ---- Hidden state -------------------------------------------------------------------

void FabricSim::flip_ff(TileCoord tile, u8 ff) {
  const u32 t = tidx(tile);
  const std::size_t fi = static_cast<std::size_t>(t) * kFfsPerClb + ff;
  ff_state_[fi] ^= 1;
  out_val_[static_cast<std::size_t>(t) * kClbOutputs +
           static_cast<std::size_t>((ff / 2) * 4 + 2 + (ff % 2))] =
      ff_state_[fi];
  if (!tiles_[t].active) tiles_[t].active = true;
  mark_dirty(t);
  eval();
}

bool FabricSim::ff_value(TileCoord tile, u8 ff) const {
  return ff_state_[static_cast<std::size_t>(tidx(tile)) * kFfsPerClb + ff] != 0;
}

bool FabricSim::halflatch(TileCoord tile, u8 pin) const {
  return halflatch_[static_cast<std::size_t>(tidx(tile)) * kImuxPins + pin] != 0;
}

void FabricSim::set_halflatch(TileCoord tile, u8 pin, bool v) {
  const u32 t = tidx(tile);
  auto& cell = halflatch_[static_cast<std::size_t>(t) * kImuxPins + pin];
  if (cell == static_cast<u8>(v)) return;
  cell = v ? 1 : 0;
  // The LUT-index caches fold in half-latch values; recompute them.
  refresh_tile_activity(t);
  // Inactive tiles with a flipped latch still matter if something reads
  // them (e.g. a CE pin); force processing.
  if (!tiles_[t].active) tiles_[t].active = true;
  mark_dirty(t);
  eval();
}

void FabricSim::flip_halflatch(TileCoord tile, u8 pin) {
  set_halflatch(tile, pin, !halflatch(tile, pin));
}

// ---- BRAM ------------------------------------------------------------------------------

void FabricSim::bram_clock(u16 bram_col, u16 block, const BramPortIn& in) {
  u16 word = 0;
  for (int b = 0; b < kBramWidth; ++b) {
    if (cfg_.bram_content_bit(bram_col, block,
                              static_cast<u16>(in.addr * kBramWidth + b))) {
      word |= static_cast<u16>(1u << b);
    }
  }
  if (in.we) {
    for (int b = 0; b < kBramWidth; ++b) {
      cfg_.set_bram_content_bit(bram_col, block,
                                static_cast<u16>(in.addr * kBramWidth + b),
                                (in.din >> b) & 1);
    }
    // The written word lives in one content frame (frame f holds bits
    // f*64..f*64+63 of every block); its readback diverges from the image.
    mark_frame_dirty(space_->global_frame_index(
        FrameAddress{ColumnKind::kBram, bram_col,
                     static_cast<u16>(in.addr * kBramWidth / 64)}));
    word = in.din;  // WRITE_FIRST
  }
  bram_[bram_col].dout[block] = word;
}

u16 FabricSim::bram_dout(u16 bram_col, u16 block) const {
  return bram_[bram_col].dout[block];
}

u16 FabricSim::bram_word(u16 bram_col, u16 block, u8 addr) const {
  u16 word = 0;
  for (int b = 0; b < kBramWidth; ++b) {
    if (cfg_.bram_content_bit(bram_col, block,
                              static_cast<u16>(addr * kBramWidth + b))) {
      word |= static_cast<u16>(1u << b);
    }
  }
  return word;
}

// ---- Permanent faults --------------------------------------------------------------------

void FabricSim::inject_permanent_fault(const PermanentFault& fault) {
  have_permanent_faults_ = true;
  const u32 t = tidx(fault.tile);
  switch (fault.kind) {
    case StuckKind::kWireStuck0:
    case StuckKind::kWireStuck1: {
      const std::size_t wi =
          static_cast<std::size_t>(t) * kWiresPerClb +
          static_cast<std::size_t>(static_cast<int>(fault.dir)) * kWiresPerDir +
          fault.windex;
      stuck_wire_[wi] = fault.kind == StuckKind::kWireStuck1 ? 2 : 1;
      wire_val_[wi] = fault.kind == StuckKind::kWireStuck1 ? 1 : 0;
      break;
    }
    case StuckKind::kOutputStuck0:
    case StuckKind::kOutputStuck1: {
      const std::size_t oi = static_cast<std::size_t>(t) * kClbOutputs + fault.output;
      stuck_out_[oi] = fault.kind == StuckKind::kOutputStuck1 ? 2 : 1;
      break;
    }
  }
  if (!tiles_[t].active) tiles_[t].active = true;
  mark_dirty(t);
  for (int d = 0; d < kDirs; ++d) {
    const u32 nb = neighbor_[static_cast<std::size_t>(t) * kDirs + static_cast<std::size_t>(d)];
    if (nb != kNoTile) mark_dirty(nb);
  }
  eval();
}

void FabricSim::clear_permanent_faults() {
  std::fill(stuck_wire_.begin(), stuck_wire_.end(), 0);
  std::fill(stuck_out_.begin(), stuck_out_.end(), 0);
  have_permanent_faults_ = false;
  for (u32 t = 0; t < tiles_.size(); ++t) mark_dirty(t);
  eval();
}

std::size_t FabricSim::active_tile_count() const {
  std::size_t n = 0;
  for (const Tile& tl : tiles_) {
    if (tl.active) ++n;
  }
  return n;
}

}  // namespace vscrub
