// Which gang-engine ISA tiers this build can carry. The AVX tiers are built
// by target-annotating only the engine's own functions (#pragma GCC target
// inside the per-ISA translation units) — shared inline code stays at the
// baseline ISA, so nothing outside the runtime-dispatched engine can emit an
// instruction the host might lack. That mechanism needs x86-64 plus a
// GCC-compatible compiler; everywhere else only the scalar tier exists.
#pragma once

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define VSCRUB_HAVE_ISA_AVX2 1
#define VSCRUB_HAVE_ISA_AVX512 1
#else
#define VSCRUB_HAVE_ISA_AVX2 0
#define VSCRUB_HAVE_ISA_AVX512 0
#endif
