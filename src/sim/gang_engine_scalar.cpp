// Scalar (baseline-ISA) instantiation of the gang engine: every width, no
// target pragma. This tier must run on any x86-64 (or non-x86) host — it is
// both the portable fallback and the reference the differential tests pin
// the AVX tiers against.
#include "sim/gang_engine_prelude.h"

namespace vscrub {
namespace gang_scalar {

#include "sim/wide_word.inc"
#include "sim/gang_engine.inc"

std::unique_ptr<GangEngineBase> make_engine_64(const PlacedDesign& design,
                                               const GangEngineConfig& config) {
  return std::make_unique<GangEngine<1>>(design, config);
}
std::unique_ptr<GangEngineBase> make_engine_256(
    const PlacedDesign& design, const GangEngineConfig& config) {
  return std::make_unique<GangEngine<4>>(design, config);
}
std::unique_ptr<GangEngineBase> make_engine_512(
    const PlacedDesign& design, const GangEngineConfig& config) {
  return std::make_unique<GangEngine<8>>(design, config);
}

}  // namespace gang_scalar
}  // namespace vscrub
