// Shared tile-level configuration decode. FabricSim and GangSim must agree
// *exactly* on how raw configuration bits decode into tile behaviour — any
// drift between the two engines breaks the gang/scalar equivalence the
// campaign depends on — so the decode lives here, once, and both engines
// call it.
#pragma once

#include "bitstream/bitstream.h"
#include "fabric/config_space.h"

namespace vscrub {

/// The decoded configuration of one CLB tile: everything behaviour-relevant
/// that the tile's 768 configuration bits encode. `lut_cells` doubles as the
/// live LUT SRAM in the simulators (SRL16/RAM16 contents shift at runtime).
struct TileConfig {
  u16 lut_cells[kLutsPerClb];
  LutMode lut_mode[kLutsPerClb];
  u8 imux[kImuxPins];
  u8 omux[kWiresPerClb];
  bool ff_init[kFfsPerClb];
  bool ff_used[kFfsPerClb];
  bool ff_byp[kFfsPerClb];
  bool clk_en[kSlicesPerClb];
};

/// Decodes every field of `tc`'s tile from the configuration image.
void decode_tile_config(const Bitstream& cfg, TileCoord tc, TileConfig& out);

/// Applies one tile-local configuration-bit change (tile_bit 0..767 set to
/// `value`) to an already-decoded TileConfig. Returns true when the decoded
/// behaviour changed (a padding bit, or a LutMode code aliasing to the same
/// mode, changes nothing).
bool apply_tile_bit(TileConfig& tl, u16 tile_bit, bool value);

/// Whether the tile participates in clocking: any slice with its clock
/// enabled that holds a used FF or a dynamic (SRL16/RAM16) LUT site.
inline bool tile_is_sequential(const TileConfig& tl) {
  for (int s = 0; s < kSlicesPerClb; ++s) {
    if (!tl.clk_en[s]) continue;
    for (int i = 0; i < kLutsPerSlice; ++i) {
      const int site = s * kLutsPerSlice + i;
      if (tl.ff_used[site] || tl.lut_mode[site] != LutMode::kLut) return true;
    }
  }
  return false;
}

}  // namespace vscrub
