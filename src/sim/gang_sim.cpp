#include "sim/gang_sim.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace vscrub {
namespace {

constexpr u32 kSrcPayload = FabricSim::kSrcPayload;
constexpr u32 kSrcHalfLatch = FabricSim::kSrcHalfLatch;
constexpr u32 kSrcWire = FabricSim::kSrcWire;
constexpr u32 kSrcOutput = FabricSim::kSrcOutput;
constexpr u32 kSrcZero = FabricSim::kSrcZero;
constexpr u32 kNoTile = FabricSim::kNoTile;

constexpr std::size_t zu(int v) { return static_cast<std::size_t>(v); }

/// Lane-parallel 4-input LUT read: Shannon-folds the 16 truth bits down the
/// four input words. mux_w(s,a,b) selects a where s=1, b where s=0, per lane.
u64 mux_w(u64 s, u64 a, u64 b) { return b ^ (s & (a ^ b)); }

u64 lut_eval_word(u16 cells, const u64 in[kLutInputs]) {
  u64 lvl[8];
  for (int k = 0; k < 8; ++k) {
    const u64 b0 = (cells >> (2 * k)) & 1 ? ~u64{0} : u64{0};
    const u64 b1 = (cells >> (2 * k + 1)) & 1 ? ~u64{0} : u64{0};
    lvl[k] = mux_w(in[0], b1, b0);
  }
  for (int k = 0; k < 4; ++k) lvl[k] = mux_w(in[1], lvl[2 * k + 1], lvl[2 * k]);
  for (int k = 0; k < 2; ++k) lvl[k] = mux_w(in[2], lvl[2 * k + 1], lvl[2 * k]);
  return mux_w(in[3], lvl[1], lvl[0]);
}

/// Spreads a word into "which lanes differ from lane 0" form.
u64 div_spread(u64 w) { return w ^ (u64{0} - (w & 1)); }

bool tile_config_equal(const TileConfig& a, const TileConfig& b) {
  for (int l = 0; l < kLutsPerClb; ++l) {
    if (a.lut_cells[l] != b.lut_cells[l] || a.lut_mode[l] != b.lut_mode[l]) {
      return false;
    }
  }
  for (int p = 0; p < kImuxPins; ++p) {
    if (a.imux[p] != b.imux[p]) return false;
  }
  for (int w = 0; w < kWiresPerClb; ++w) {
    if (a.omux[w] != b.omux[w]) return false;
  }
  for (int f = 0; f < kFfsPerClb; ++f) {
    if (a.ff_init[f] != b.ff_init[f] || a.ff_used[f] != b.ff_used[f] ||
        a.ff_byp[f] != b.ff_byp[f]) {
      return false;
    }
  }
  for (int s = 0; s < kSlicesPerClb; ++s) {
    if (a.clk_en[s] != b.clk_en[s]) return false;
  }
  return true;
}

}  // namespace

GangSim::GangSim(const PlacedDesign& design)
    : design_(&design), golden_(design.space), harness_(design, golden_) {
  VSCRUB_CHECK(design.brams.empty() && design.dynamic_lut_sites.empty(),
               "gang evaluation requires a BRAM-free design with no dynamic "
               "LUT state");
  harness_.configure();
  // restart() marks the external-const drives dirty without settling them;
  // settle now so the captured baseline is the true pre-stimulus fixpoint.
  golden_.eval();

  ntiles_ = golden_.geometry().tile_count();
  hl_ = &golden_.halflatch_values();

  const std::size_t no = static_cast<std::size_t>(ntiles_) * kClbOutputs;
  const std::size_t nw = static_cast<std::size_t>(ntiles_) * kWiresPerClb;
  const std::size_t nf = static_cast<std::size_t>(ntiles_) * kFfsPerClb;
  base_out_w_.resize(no);
  base_wire_w_.resize(nw);
  base_ff_w_.resize(nf);
  for (std::size_t i = 0; i < no; ++i) {
    base_out_w_[i] = splat(golden_.out_values()[i]);
  }
  for (std::size_t i = 0; i < nw; ++i) {
    base_wire_w_[i] = splat(golden_.wire_values()[i]);
  }
  for (std::size_t i = 0; i < nf; ++i) {
    base_ff_w_[i] = splat(golden_.ff_state_snapshot()[i]);
  }
  out_w_.resize(no);
  wire_w_.resize(nw);
  ff_w_.resize(nf);

  base_ovr_mask_.assign(ntiles_, 0);
  base_ovr_w_.assign(no, 0);
  drive_mask_.assign(ntiles_, 0);
  for (const auto& ec : design.external_consts) {
    const u32 t = golden_.geometry().tile_index(ec.drive.tile);
    base_ovr_mask_[t] |= static_cast<u8>(1u << ec.drive.out_index);
    base_ovr_w_[static_cast<std::size_t>(t) * kClbOutputs +
                ec.drive.out_index] = splat(ec.value ? 1 : 0);
  }
  for (const DrivePoint& dp : design.input_drives) {
    const u32 t = golden_.geometry().tile_index(dp.tile);
    drives_.push_back({t, dp.out_index});
    drive_mask_[t] |= static_cast<u8>(1u << dp.out_index);
  }
  for (const TapPoint& tp : design.output_taps) {
    taps_.push_back({golden_.geometry().tile_index(tp.tile), tp.pin});
  }
  tap_w_.resize(taps_.size());
  ovr_mask_.resize(ntiles_);
  ovr_w_.resize(no);

  base_active_.assign(ntiles_, 0);
  golden_seq_flag_.assign(ntiles_, 0);
  for (u32 t = 0; t < ntiles_; ++t) {
    const FabricSim::Tile& tl = golden_.tile_state(t);
    // Tiles the harness drives stay processable even when their decode says
    // inactive (set_drive force-activates them in the scalar path).
    base_active_[t] = (tl.active || drive_mask_[t] != 0) ? 1 : 0;
    if (tile_is_sequential(tl)) {
      golden_seq_flag_[t] = 1;
      golden_seq_.push_back(t);
    }
  }
  gang_active_.resize(ntiles_);

  dirty_flag_.assign(ntiles_, 0);
  tile_vhead_.assign(ntiles_, -1);
  tile_has_var_.assign(ntiles_, 0);
  tile_div_.assign(ntiles_, 0);
  div_flag_.assign(ntiles_, 0);
  pend_slot_.assign(nf, 0);
  pend_epoch_.assign(nf, 0);
}

u64 GangSim::resolve_word(u32 enc) const {
  switch (enc & ~kSrcPayload) {
    case kSrcHalfLatch: return (*hl_)[enc & kSrcPayload] ? ~u64{0} : u64{0};
    case kSrcWire: return wire_w_[enc & kSrcPayload];
    case kSrcOutput: return out_w_[enc & kSrcPayload];
    default: return 0;
  }
}

void GangSim::mark_dirty(u32 t) {
  if (dirty_flag_[t] || !gang_active_[t]) return;
  dirty_flag_[t] = 1;
  dirty_queue_.push_back(t);
}

void GangSim::mark_neighbors_dirty(u32 t) {
  for (int d = 0; d < kDirs; ++d) {
    const u32 nb = golden_.neighbor_index(t, d);
    if (nb != kNoTile) mark_dirty(nb);
  }
}

// Mirrors refresh_tile_activity()'s settle semantics for one lane: zero the
// values the decode proves quiescent and re-sync registered outputs with the
// lane's FF bits, then let the event sweep recompute everything live.
void GangSim::settle_lane_decode(u32 t, int lane, const FabricSim::Tile& cfg,
                                 const u32* wire_src) {
  const u64 lm = u64{1} << lane;
  const std::size_t ob = static_cast<std::size_t>(t) * kClbOutputs;
  const std::size_t wb = static_cast<std::size_t>(t) * kWiresPerClb;
  const std::size_t fb = static_cast<std::size_t>(t) * kFfsPerClb;
  if (!cfg.active) {
    for (int o = 0; o < kClbOutputs; ++o) out_w_[ob + zu(o)] &= ~lm;
    for (int w = 0; w < kWiresPerClb; ++w) wire_w_[wb + zu(w)] &= ~lm;
  } else {
    for (int w = 0; w < kWiresPerClb; ++w) {
      if (wire_src[zu(w)] == kSrcZero) wire_w_[wb + zu(w)] &= ~lm;
    }
    for (int l = 0; l < kLutsPerClb; ++l) {
      if (cfg.active_lut_mask & (1u << l)) continue;
      const int out = (l / 2) * 4 + (l % 2);
      if (!(ovr_mask_[t] & (1u << out))) out_w_[ob + zu(out)] &= ~lm;
    }
    for (int f = 0; f < kFfsPerClb; ++f) {
      const std::size_t oi = ob + zu((f / 2) * 4 + 2 + (f % 2));
      out_w_[oi] = (out_w_[oi] & ~lm) | (ff_w_[fb + zu(f)] & lm);
    }
  }
  mark_dirty(t);
  mark_neighbors_dirty(t);
}

// Decodes the flipped bit through golden_ itself (write corrupted frame,
// copy the refreshed structures, write the golden frame back) — the variant
// is produced by the exact code path the scalar engine uses, so the two can
// never disagree on what a flip means.
bool GangSim::install_variant(const BitAddress& addr, int lane) {
  const ConfigSpace& space = golden_.space();
  const ConfigSpace::TileRef ref = space.tile_ref_of(addr);
  if (!ref.valid) return false;  // padding slot: flip changes nothing
  const u32 t = golden_.geometry().tile_index(ref.tile);

  BitVector img = design_->bitstream.frame(addr.frame);
  img.flip(addr.offset);
  golden_.write_frame(addr.frame, img);

  Variant v;
  v.lane = lane;
  v.tile = t;
  v.cfg = golden_.tile_state(t);
  for (int p = 0; p < kImuxPins; ++p) {
    v.pin_src[static_cast<std::size_t>(p)] =
        golden_.pin_source(t, static_cast<u8>(p));
  }
  for (int w = 0; w < kWiresPerClb; ++w) {
    v.wire_src[static_cast<std::size_t>(w)] =
        golden_.wire_source(t, static_cast<u8>(w));
  }
  golden_.write_frame(addr.frame, design_->bitstream.frame(addr.frame));

  if (tile_config_equal(v.cfg, golden_.tile_state(t))) {
    return false;  // non-behavioral flip (e.g. a mode-code alias)
  }
  // Harness drives force-activate their tiles in the scalar path; mirror
  // that in the variant's structural view.
  if (drive_mask_[t] != 0) {
    v.cfg.override_mask |= drive_mask_[t];
    v.cfg.active = true;
  }
  v.seq = tile_is_sequential(v.cfg);

  variants_.push_back(v);
  const i32 vi = static_cast<i32>(variants_.size()) - 1;
  variants_[static_cast<std::size_t>(vi)].next = tile_vhead_[t];
  tile_vhead_[t] = vi;
  if (!tile_has_var_[t]) {
    tile_has_var_[t] = 1;
    variant_tiles_.push_back(t);
  }
  gang_active_[t] |= v.cfg.active ? 1 : 0;
  settle_lane_decode(t, lane, variants_[static_cast<std::size_t>(vi)].cfg,
                     variants_[static_cast<std::size_t>(vi)].wire_src.data());
  return true;
}

// Drops the lane's configuration overlay (the scalar loop's scrub repair):
// from here the lane evaluates with the golden structures, carrying only its
// diverged state.
void GangSim::repair_lane(int lane) {
  for (std::size_t i = 0; i < variants_.size(); ++i) {
    Variant& v = variants_[i];
    if (v.lane != lane || v.repaired) continue;
    v.repaired = true;
    v.cells_pending = 0;
    u32 gsrc[kWiresPerClb];
    for (int w = 0; w < kWiresPerClb; ++w) {
      gsrc[w] = golden_.wire_source(v.tile, static_cast<u8>(w));
    }
    settle_lane_decode(v.tile, lane, golden_.tile_state(v.tile), gsrc);
    return;
  }
}

// ---- Evaluation -----------------------------------------------------------

// Word-parallel mirror of FabricSim::process_tile() using the golden tile's
// structures: all lanes that share the golden decode for this tile advance
// together.
void GangSim::golden_pass(u32 t) {
  const FabricSim::Tile& tl = golden_.tile_state(t);
  const std::size_t ob = static_cast<std::size_t>(t) * kClbOutputs;
  const int max_pass = tl.has_local_feedback ? 8 : 1;
  for (int pass = 0; pass < max_pass; ++pass) {
    bool local_change = false;

    for (int l = 0; l < kLutsPerClb; ++l) {
      const int out = (l / 2) * 4 + (l % 2);
      const u8 mask = static_cast<u8>(1u << out);
      if (!(tl.active_lut_mask & (1u << l)) && !(ovr_mask_[t] & mask)) {
        continue;
      }
      u64 v;
      if (ovr_mask_[t] & mask) {
        v = ovr_w_[ob + zu(out)];
      } else {
        u64 in[kLutInputs];
        u8 dyn = tl.lut_dyn_mask[l];
        for (int i = 0; i < kLutInputs; ++i) {
          if (dyn & (1u << i)) {
            in[i] = resolve_word(
                golden_.pin_source(t, static_cast<u8>(lut_input_pin(l, i))));
          } else {
            in[i] = (tl.lut_base_idx[l] >> i) & 1 ? ~u64{0} : u64{0};
          }
        }
        v = lut_eval_word(tl.lut_cells[l], in);
      }
      if (out_w_[ob + zu(out)] != v) {
        out_w_[ob + zu(out)] = v;
        local_change = true;
      }
    }

    for (u8 wire : tl.driven_wires) {
      const std::size_t wi = static_cast<std::size_t>(t) * kWiresPerClb + wire;
      const u32 enc = golden_.wire_source(t, wire);
      u64 v = 0;
      switch (enc & ~kSrcPayload) {
        case kSrcWire: v = wire_w_[enc & kSrcPayload]; break;
        case kSrcOutput: v = out_w_[enc & kSrcPayload]; break;
        default: break;
      }
      if (wire_w_[wi] != v) {
        wire_w_[wi] = v;
        const u32 nb = golden_.neighbor_index(t, wire / kWiresPerDir);
        if (nb != kNoTile) mark_dirty(nb);
      }
    }

    if (!local_change) return;
  }
}

// Per-lane scalar mirror of process_tile() with the variant's structures.
// `louts` carries the lane's own-output bits saved before the golden pass
// clobbered them (local feedback must read the lane's values, not golden's).
void GangSim::variant_pass(Variant& v, u8* louts) {
  const u32 t = v.tile;
  const int lane = v.lane;
  const u64 lm = u64{1} << lane;
  const FabricSim::Tile& tl = v.cfg;
  const std::size_t ob = static_cast<std::size_t>(t) * kClbOutputs;
  const std::size_t wb = static_cast<std::size_t>(t) * kWiresPerClb;

  if (!tl.active) {
    // Scalar inactive tiles are quiescent-zero everywhere (enforced at
    // decode time); keep this lane's bits pinned there.
    for (int o = 0; o < kClbOutputs; ++o) out_w_[ob + zu(o)] &= ~lm;
    bool wchanged[kDirs] = {};
    for (int w = 0; w < kWiresPerClb; ++w) {
      if (wire_w_[wb + zu(w)] & lm) {
        wire_w_[wb + zu(w)] &= ~lm;
        wchanged[w / kWiresPerDir] = true;
      }
    }
    for (int d = 0; d < kDirs; ++d) {
      if (!wchanged[d]) continue;
      const u32 nb = golden_.neighbor_index(t, d);
      if (nb != kNoTile) mark_dirty(nb);
    }
    return;
  }

  const auto resolve_lane = [&](u32 enc) -> u8 {
    switch (enc & ~kSrcPayload) {
      case kSrcHalfLatch: return (*hl_)[enc & kSrcPayload] ? 1 : 0;
      case kSrcWire: return (wire_w_[enc & kSrcPayload] >> lane) & 1;
      case kSrcOutput: {
        const u32 payload = enc & kSrcPayload;
        // Own outputs come from the lane-local array; the shared words hold
        // them only after this pass writes back.
        if (payload >= ob && payload < ob + kClbOutputs) {
          return louts[payload - ob];
        }
        return (out_w_[payload] >> lane) & 1;
      }
      default: return 0;
    }
  };

  const int max_pass = tl.has_local_feedback ? 8 : 1;
  for (int pass = 0; pass < max_pass; ++pass) {
    bool local_change = false;

    for (int l = 0; l < kLutsPerClb; ++l) {
      const int out = (l / 2) * 4 + (l % 2);
      const u8 mask = static_cast<u8>(1u << out);
      if (!(tl.active_lut_mask & (1u << l)) && !(ovr_mask_[t] & mask)) {
        continue;
      }
      u8 val;
      if (ovr_mask_[t] & mask) {
        val = (ovr_w_[ob + zu(out)] >> lane) & 1;
      } else {
        unsigned idx = tl.lut_base_idx[l];
        u8 dyn = tl.lut_dyn_mask[l];
        while (dyn != 0) {
          const int i = std::countr_zero(dyn);
          dyn = static_cast<u8>(dyn & (dyn - 1));
          idx |= static_cast<unsigned>(
                     resolve_lane(
                         v.pin_src[static_cast<std::size_t>(lut_input_pin(l, i))]) &
                     1)
                 << i;
        }
        val = (tl.lut_cells[l] >> idx) & 1;
      }
      if (louts[out] != val) {
        louts[out] = val;
        local_change = true;
      }
    }

    for (u8 wire : tl.driven_wires) {
      const std::size_t wi = wb + wire;
      const u32 enc = v.wire_src[wire];
      u8 val = 0;
      switch (enc & ~kSrcPayload) {
        case kSrcWire: val = (wire_w_[enc & kSrcPayload] >> lane) & 1; break;
        case kSrcOutput: {
          const u32 payload = enc & kSrcPayload;
          val = (payload >= ob && payload < ob + kClbOutputs)
                    ? louts[payload - ob]
                    : static_cast<u8>((out_w_[payload] >> lane) & 1);
          break;
        }
        default: break;
      }
      const u64 cur = wire_w_[wi];
      const u64 nxt = (cur & ~lm) | (val ? lm : 0);
      if (nxt != cur) {
        wire_w_[wi] = nxt;
        const u32 nb = golden_.neighbor_index(t, wire / kWiresPerDir);
        if (nb != kNoTile) mark_dirty(nb);
      }
    }

    if (!local_change) break;
  }

  // A variant whose decode stops driving a wire the golden tile drives must
  // not inherit the golden value there: scalar would idle that wire at 0.
  for (int w = 0; w < kWiresPerClb; ++w) {
    if (v.wire_src[zu(w)] != kSrcZero) continue;
    if (wire_w_[wb + zu(w)] & lm) {
      wire_w_[wb + zu(w)] &= ~lm;
      const u32 nb = golden_.neighbor_index(t, w / kWiresPerDir);
      if (nb != kNoTile) mark_dirty(nb);
    }
  }

  // Write the lane's output bits back into the shared words. Comb outputs of
  // LUTs the variant decode proves constant-zero stay pinned at 0 (scalar
  // zeroes them at decode time and skips them in eval).
  for (int l = 0; l < kLutsPerClb; ++l) {
    const int out = (l / 2) * 4 + (l % 2);
    if (!(tl.active_lut_mask & (1u << l)) &&
        !(ovr_mask_[t] & (1u << out))) {
      louts[out] = 0;
    }
  }
  for (int o = 0; o < kClbOutputs; ++o) {
    out_w_[ob + zu(o)] = (out_w_[ob + zu(o)] & ~lm) | (louts[o] ? lm : 0);
  }
}

void GangSim::process_tile(u32 t) {
  // Save each unrepaired variant lane's own-output bits before the golden
  // pass overwrites the words.
  u8 louts[kMaxLanes][kClbOutputs];
  int vidx[kMaxLanes];
  int nvars = 0;
  if (tile_has_var_[t]) {
    const std::size_t ob = static_cast<std::size_t>(t) * kClbOutputs;
    for (i32 vi = tile_vhead_[t]; vi >= 0;
         vi = variants_[static_cast<std::size_t>(vi)].next) {
      const Variant& v = variants_[static_cast<std::size_t>(vi)];
      if (v.repaired) continue;
      for (int o = 0; o < kClbOutputs; ++o) {
        louts[nvars][o] = (out_w_[ob + zu(o)] >> v.lane) & 1;
      }
      vidx[nvars++] = vi;
    }
  }

  if (golden_.tile_state(t).active || drive_mask_[t] != 0 ||
      base_ovr_mask_[t] != 0) {
    golden_pass(t);
  }
  for (int i = 0; i < nvars; ++i) {
    variant_pass(variants_[static_cast<std::size_t>(vidx[i])], louts[i]);
  }
  update_div(t);
}

void GangSim::update_div(u32 t) {
  u64 div = 0;
  const std::size_t ob = static_cast<std::size_t>(t) * kClbOutputs;
  const std::size_t wb = static_cast<std::size_t>(t) * kWiresPerClb;
  const std::size_t fb = static_cast<std::size_t>(t) * kFfsPerClb;
  for (int o = 0; o < kClbOutputs; ++o) div |= div_spread(out_w_[ob + zu(o)]);
  for (int f = 0; f < kFfsPerClb; ++f) div |= div_spread(ff_w_[fb + zu(f)]);
  if (tile_has_var_[t]) {
    for (int w = 0; w < kWiresPerClb; ++w) div |= div_spread(wire_w_[wb + zu(w)]);
  } else {
    for (u8 w : golden_.tile_state(t).driven_wires) {
      div |= div_spread(wire_w_[wb + zu(w)]);
    }
  }
  if (div != tile_div_[t]) {
    tile_div_[t] = div;
    if (div != 0 && !div_flag_[t]) {
      div_flag_[t] = 1;
      div_tiles_.push_back(t);
    }
  }
}

u64 GangSim::global_div() {
  u64 d = 0;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < div_tiles_.size(); ++i) {
    const u32 t = div_tiles_[i];
    if (tile_div_[t] == 0) {
      div_flag_[t] = 0;
      continue;
    }
    div_tiles_[keep++] = t;
    d |= tile_div_[t];
  }
  div_tiles_.resize(keep);
  return d;
}

void GangSim::eval() {
  std::size_t processed = 0;
  std::size_t head = 0;
  const std::size_t bound =
      static_cast<std::size_t>(ntiles_) * 64 + 4096;
  while (head < dirty_queue_.size()) {
    const u32 t = dirty_queue_[head++];
    dirty_flag_[t] = 0;
    process_tile(t);
    if (++processed > bound) {
      // A corrupted decode formed an oscillator the event sweep cannot
      // settle; the scalar engine's verdict for such lanes depends on the
      // exact drain order, so every undecided lane falls back.
      eval_bound_hit_ = true;
      for (std::size_t i = head; i < dirty_queue_.size(); ++i) {
        dirty_flag_[dirty_queue_[i]] = 0;
      }
      break;
    }
  }
  dirty_queue_.clear();
}

// ---- Clocking -------------------------------------------------------------

void GangSim::clock_words() {
  pending_.clear();
  ++clock_epoch_;

  // Sample golden next-state word-parallel (two-phase, like FabricSim).
  for (u32 t : golden_seq_) {
    const FabricSim::Tile& tl = golden_.tile_state(t);
    const bool record = tile_has_var_[t] != 0;
    for (int s = 0; s < kSlicesPerClb; ++s) {
      if (!tl.clk_en[s]) continue;
      const u64 ce = resolve_word(golden_.pin_source(t, static_cast<u8>(ce_pin(s))));
      const u64 sr = resolve_word(golden_.pin_source(t, static_cast<u8>(sr_pin(s))));
      for (int i = 0; i < kLutsPerSlice; ++i) {
        const int site = s * kLutsPerSlice + i;
        if (!tl.ff_used[site]) continue;
        const std::size_t fi =
            static_cast<std::size_t>(t) * kFfsPerClb + static_cast<std::size_t>(site);
        const u64 q = ff_w_[fi];
        const u64 d =
            tl.ff_byp[site]
                ? resolve_word(golden_.pin_source(t, static_cast<u8>(byp_pin(site))))
                : out_w_[static_cast<std::size_t>(t) * kClbOutputs +
                         zu((site / 2) * 4 + (site % 2))];
        const u64 next = ~sr & ((ce & d) | (~ce & q));
        if (record) {
          pend_slot_[fi] = static_cast<u32>(pending_.size()) + 1;
          pend_epoch_[fi] = clock_epoch_;
        }
        pending_.push_back({t, static_cast<u8>(site), next, ~u64{0}});
      }
    }
  }

  // Patch each unrepaired variant's lane: its decode decides which FFs clock
  // (and with what data), and which golden-clocked FFs it instead holds.
  for (Variant& v : variants_) {
    if (v.repaired) continue;
    if (!v.seq && !golden_seq_flag_[v.tile]) continue;
    const u32 t = v.tile;
    const int lane = v.lane;
    const u64 lm = u64{1} << lane;
    for (int s = 0; s < kSlicesPerClb; ++s) {
      const bool en = v.cfg.clk_en[s];
      u8 ce = 0, sr = 0;
      if (en) {
        ce = lane_of(v.pin_src[static_cast<std::size_t>(ce_pin(s))], lane);
        sr = lane_of(v.pin_src[static_cast<std::size_t>(sr_pin(s))], lane);
      }
      for (int i = 0; i < kLutsPerSlice; ++i) {
        const int site = s * kLutsPerSlice + i;
        const std::size_t fi =
            static_cast<std::size_t>(t) * kFfsPerClb + static_cast<std::size_t>(site);
        Pending* e = (pend_epoch_[fi] == clock_epoch_)
                         ? &pending_[pend_slot_[fi] - 1]
                         : nullptr;
        if (en && v.cfg.ff_used[site]) {
          u8 nxt;
          if (sr) {
            nxt = 0;
          } else if (ce) {
            nxt = v.cfg.ff_byp[site]
                      ? lane_of(v.pin_src[static_cast<std::size_t>(byp_pin(site))], lane)
                      : static_cast<u8>(
                            (out_w_[static_cast<std::size_t>(t) * kClbOutputs +
                                    zu((site / 2) * 4 + (site % 2))] >>
                             lane) &
                            1);
          } else {
            nxt = (ff_w_[fi] >> lane) & 1;
          }
          if (!e) {
            pend_slot_[fi] = static_cast<u32>(pending_.size()) + 1;
            pend_epoch_[fi] = clock_epoch_;
            pending_.push_back({t, static_cast<u8>(site), ff_w_[fi], 0});
            e = &pending_.back();
          }
          e->word = (e->word & ~lm) | (nxt ? lm : 0);
          e->wmask |= lm;
        } else if (e) {
          e->wmask &= ~lm;  // this lane's decode does not clock the FF
        }
        // Dynamic LUT sites a flip created: per-lane SRL16 shift / RAM16
        // write into the variant's live cells.
        if (en && ce && v.cfg.lut_mode[site] == LutMode::kSrl16) {
          const u8 d =
              lane_of(v.pin_src[static_cast<std::size_t>(byp_pin(site))], lane);
          v.pending_cells[site] =
              static_cast<u16>((v.cfg.lut_cells[site] << 1) | d);
          v.cells_pending |= static_cast<u8>(1u << site);
        } else if (en && ce && v.cfg.lut_mode[site] == LutMode::kRam16) {
          unsigned addr = 0;
          for (int b = 0; b < kLutInputs; ++b) {
            addr |= static_cast<unsigned>(lane_of(
                        v.pin_src[static_cast<std::size_t>(lut_input_pin(site, b))],
                        lane))
                    << b;
          }
          const u8 d =
              lane_of(v.pin_src[static_cast<std::size_t>(byp_pin(site))], lane);
          u16 nxt = v.cfg.lut_cells[site];
          nxt = static_cast<u16>(d ? (nxt | (1u << addr)) : (nxt & ~(1u << addr)));
          v.pending_cells[site] = nxt;
          v.cells_pending |= static_cast<u8>(1u << site);
        }
      }
    }
  }

  // Commit.
  for (const Pending& p : pending_) {
    const std::size_t fi =
        static_cast<std::size_t>(p.tile) * kFfsPerClb + p.ff;
    const u64 cur = ff_w_[fi];
    const u64 next = (p.word & p.wmask) | (cur & ~p.wmask);
    const std::size_t oi = static_cast<std::size_t>(p.tile) * kClbOutputs +
                           (p.ff / 2) * 4 + 2 + (p.ff % 2);
    const u64 ocur = out_w_[oi];
    const u64 onext = (next & p.wmask) | (ocur & ~p.wmask);
    if (next != cur || onext != ocur) {
      ff_w_[fi] = next;
      out_w_[oi] = onext;
      mark_dirty(p.tile);
    }
  }
  for (Variant& v : variants_) {
    if (v.cells_pending == 0) continue;
    u8 m = v.cells_pending;
    v.cells_pending = 0;
    while (m != 0) {
      const int site = std::countr_zero(m);
      m = static_cast<u8>(m & (m - 1));
      if (v.cfg.lut_cells[site] != v.pending_cells[site]) {
        v.cfg.lut_cells[site] = v.pending_cells[site];
        mark_dirty(v.tile);
      }
    }
  }
  eval();
}

// ---- Harness --------------------------------------------------------------

void GangSim::apply_inputs(Stimulus& stim) {
  stim.next(input_bits_);
  for (std::size_t i = 0; i < drives_.size(); ++i) {
    const Drive& d = drives_[i];
    const u64 w = input_bits_[i] ? ~u64{0} : u64{0};
    const u8 m = static_cast<u8>(1u << d.out);
    const std::size_t oi =
        static_cast<std::size_t>(d.tile) * kClbOutputs + d.out;
    if ((ovr_mask_[d.tile] & m) && ovr_w_[oi] == w) continue;
    ovr_mask_[d.tile] |= m;
    ovr_w_[oi] = w;
    mark_dirty(d.tile);
  }
}

void GangSim::capture_taps() {
  for (std::size_t i = 0; i < taps_.size(); ++i) {
    const Tap& tap = taps_[i];
    u64 w = resolve_word(golden_.pin_source(tap.tile, tap.pin));
    if (tile_has_var_[tap.tile]) {
      for (i32 vi = tile_vhead_[tap.tile]; vi >= 0;
           vi = variants_[static_cast<std::size_t>(vi)].next) {
        const Variant& v = variants_[static_cast<std::size_t>(vi)];
        if (v.repaired) continue;
        const u64 lm = u64{1} << v.lane;
        const u8 b = lane_of(v.pin_src[tap.pin], v.lane);
        w = (w & ~lm) | (b ? lm : 0);
      }
    }
    tap_w_[i] = w;
  }
}

// ---- Run loop ---------------------------------------------------------------

void GangSim::run(const BitAddress* addrs, std::size_t count,
                  const RunParams& p, LaneResult* results, RunStats* stats) {
  VSCRUB_CHECK(count >= 1 && count <= static_cast<std::size_t>(kMaxVariants),
               "gang lane count out of range");

  // Reset per-run state to the configured baseline.
  std::memcpy(out_w_.data(), base_out_w_.data(),
              base_out_w_.size() * sizeof(u64));
  std::memcpy(wire_w_.data(), base_wire_w_.data(),
              base_wire_w_.size() * sizeof(u64));
  std::memcpy(ff_w_.data(), base_ff_w_.data(), base_ff_w_.size() * sizeof(u64));
  std::memcpy(ovr_mask_.data(), base_ovr_mask_.data(), base_ovr_mask_.size());
  std::memcpy(ovr_w_.data(), base_ovr_w_.data(),
              base_ovr_w_.size() * sizeof(u64));
  std::memcpy(gang_active_.data(), base_active_.data(), base_active_.size());
  for (u32 t : variant_tiles_) {
    tile_vhead_[t] = -1;
    tile_has_var_[t] = 0;
  }
  variant_tiles_.clear();
  variants_.clear();
  for (u32 t : div_tiles_) {
    tile_div_[t] = 0;
    div_flag_[t] = 0;
  }
  div_tiles_.clear();
  eval_bound_hit_ = false;

  for (std::size_t i = 0; i < count; ++i) {
    results[i] = LaneResult{};
    install_variant(addrs[i], static_cast<int>(i) + 1);
  }
  // The decode-oracle round trips marked frames dirty in golden_; its
  // configuration is back at baseline, so drop the marks.
  golden_.clear_dirty_frames();

  const u64 cand = ((count + 1 < 64) ? ((u64{1} << (count + 1)) - 1) : ~u64{0}) &
                   ~u64{1};
  u64 sealed = 0, error = 0, fallback = 0, persistent = 0;
  u32 first_cycle[kMaxLanes] = {};
  u64 mask_lo[kMaxLanes] = {};

  Stimulus stim(design_->netlist->num_inputs(), p.stim_seed);
  const u32 run_until = p.warmup_cycles + p.observe_cycles;
  const u32 settle_until = run_until + p.persistence_settle;
  const u32 check_until = settle_until + p.persistence_check;

  const auto live = [&] { return cand & ~sealed & ~fallback; };
  const auto self_check = [&](u32 t) -> bool {
    if (p.golden == nullptr || t >= p.golden->size()) return true;
    OutputWord got;
    for (std::size_t i = 0; i < taps_.size() && i < 128; ++i) {
      if (tap_w_[i] & 1) {
        if (i < 64) {
          got.lo |= u64{1} << i;
        } else {
          got.hi |= u64{1} << (i - 64);
        }
      }
    }
    return got == (*p.golden)[t];
  };
  const auto tap_diff = [&]() -> u64 {
    u64 d = 0;
    for (std::size_t i = 0; i < taps_.size(); ++i) {
      d |= div_spread(tap_w_[i]);
    }
    return d;
  };

  u32 t = 0;
  // Observation window: compare every lane against the golden lane from
  // warmup onward; errors are logged and (when persistence classification is
  // on) the lane is repaired in place, exactly like the scalar loop.
  for (; t < run_until && live() != 0; ++t) {
    apply_inputs(stim);
    eval();
    const bool want_capture = t >= p.warmup_cycles;
    if (want_capture) capture_taps();
    clock_words();
    if (eval_bound_hit_) {
      fallback |= live();
      break;
    }
    if (!want_capture) continue;
    if (!self_check(t)) {
      fallback |= live();
      break;
    }
    u64 ne = tap_diff() & live() & ~error;
    error |= ne;
    while (ne != 0) {
      const int lane = std::countr_zero(ne);
      ne &= ne - 1;
      first_cycle[lane] = t;
      u64 ml = 0;
      for (std::size_t i = 0; i < taps_.size() && i < 64; ++i) {
        if (((tap_w_[i] >> lane) ^ tap_w_[i]) & 1) ml |= u64{1} << i;
      }
      mask_lo[lane] = ml;
      // Scrub repair at the same cycle boundary as the scalar loop. Without
      // persistence classification the verdict is already final.
      repair_lane(lane);
      if (!p.classify_persistence) sealed |= u64{1} << lane;
    }
    if (p.classify_persistence && (error & live()) != 0) {
      // Early retirement: a repaired lane whose divergence mask is clean at
      // a settled cycle boundary holds exactly the golden lane's state and
      // can never diverge again — it is non-persistent by construction.
      const u64 reconverged = error & live() & ~global_div();
      sealed |= reconverged;
    }
  }

  // Lanes that never erred in a full window are clean.
  if (t >= run_until) sealed |= live() & ~error;

  // Persistence: settle unchecked, then compare; reconvergence keeps
  // retiring lanes the whole time.
  if (p.classify_persistence) {
    for (; t < check_until && (error & live()) != 0; ++t) {
      apply_inputs(stim);
      eval();
      const bool checking = t >= settle_until;
      if (checking) capture_taps();
      clock_words();
      if (eval_bound_hit_) {
        fallback |= live();
        break;
      }
      if (checking) {
        if (!self_check(t)) {
          fallback |= live();
          break;
        }
        const u64 pe = tap_diff() & error & live();
        persistent |= pe;
        sealed |= pe;
      }
      sealed |= error & live() & ~global_div();
    }
    // Open error lanes that survived the whole check window clean.
    sealed |= error & ~fallback;
  }

  for (std::size_t i = 0; i < count; ++i) {
    const int lane = static_cast<int>(i) + 1;
    const u64 lm = u64{1} << lane;
    LaneResult& r = results[i];
    if (fallback & lm) {
      r.fallback = true;
      continue;
    }
    r.output_error = (error & lm) != 0;
    r.persistent = (persistent & lm) != 0;
    r.first_error_cycle = first_cycle[lane];
    r.error_output_mask_lo = mask_lo[lane];
  }

  if (stats != nullptr) {
    stats->cycles_run = t;
    stats->cycles_full =
        (p.classify_persistence && error != 0) ? check_until : run_until;
    stats->early_exit = stats->cycles_run < stats->cycles_full;
  }
}

}  // namespace vscrub
