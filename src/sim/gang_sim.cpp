// GangSim facade: validates the width/ISA options, runs CPU feature
// detection, and dispatches to the per-tier engine factory. The engine
// bodies live in gang_engine_{scalar,avx2,avx512}.cpp.
#include "sim/gang_sim.h"

#include <algorithm>

#include "sim/gang_engine.h"

namespace vscrub {

GangSim::GangSim(const PlacedDesign& design, const GangOptions& options) {
  validate_gang_width(options.width);
  width_ = options.width;

  const GangEngineConfig config{options.use_plan};
  if (width_ <= 64) {
    // One limb leaves nothing to vectorize: the u64 engine is the widest
    // sensible codegen regardless of what the CPU offers. Still resolve the
    // requested ISA so an explicit unusable tier errors identically at
    // every width.
    if (options.isa != SimdIsa::kAuto) (void)resolve_simd_isa(options.isa);
    isa_ = SimdIsa::kScalar;
    engine_ = gang_scalar::make_engine_64(design, config);
  } else {
    isa_ = resolve_simd_isa(options.isa);
    switch (isa_) {
#if VSCRUB_HAVE_ISA_AVX2
      case SimdIsa::kAvx2:
        engine_ = width_ == 256 ? gang_avx2::make_engine_256(design, config)
                                : gang_avx2::make_engine_512(design, config);
        break;
#endif
#if VSCRUB_HAVE_ISA_AVX512
      case SimdIsa::kAvx512:
        engine_ = width_ == 256 ? gang_avx512::make_engine_256(design, config)
                                : gang_avx512::make_engine_512(design, config);
        break;
#endif
      default:
        isa_ = SimdIsa::kScalar;
        engine_ = width_ == 256 ? gang_scalar::make_engine_256(design, config)
                                : gang_scalar::make_engine_512(design, config);
        break;
    }
  }
  max_variants_ = std::min(static_cast<int>(width_) - 1,
                           engine_->max_variants());
}

GangSim::~GangSim() = default;

void GangSim::run(const BitAddress* addrs, std::size_t count,
                  const RunParams& p, LaneResult* results, RunStats* stats) {
  VSCRUB_CHECK(count >= 1 && count <= static_cast<std::size_t>(max_variants_),
               "gang lane count exceeds max_variants()");
  engine_->run(addrs, count, p, results, stats);
}

bool GangSim::plan_active() const { return engine_->plan_active(); }

const std::string& GangSim::plan_note() const { return engine_->plan_note(); }

}  // namespace vscrub
