// AVX2 instantiation of the gang engine. The target pragma covers ONLY the
// code lexically inside this namespace region: the prelude has already
// pulled every std/vscrub dependency in at baseline ISA, so nothing an
// AVX2-less host could call gets vector codegen, and the namespace keeps
// these symbols distinct from the other tiers' (no ODR merging of
// differently-compiled bodies). The facade only calls these factories after
// __builtin_cpu_supports("avx2") says the host can run them.
#include "sim/gang_engine_prelude.h"

#if VSCRUB_HAVE_ISA_AVX2

#pragma GCC push_options
#pragma GCC target("avx2")

namespace vscrub {
namespace gang_avx2 {

#include "sim/wide_word.inc"
#include "sim/gang_engine.inc"

std::unique_ptr<GangEngineBase> make_engine_256(
    const PlacedDesign& design, const GangEngineConfig& config) {
  return std::make_unique<GangEngine<4>>(design, config);
}
std::unique_ptr<GangEngineBase> make_engine_512(
    const PlacedDesign& design, const GangEngineConfig& config) {
  return std::make_unique<GangEngine<8>>(design, config);
}

}  // namespace gang_avx2
}  // namespace vscrub

#pragma GCC pop_options

#endif  // VSCRUB_HAVE_ISA_AVX2
