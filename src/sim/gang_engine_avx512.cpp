// AVX-512 instantiation of the gang engine. Same isolation scheme as the
// AVX2 tier (see gang_engine_avx2.cpp): prelude first at baseline ISA, then
// the pragma scopes 512-bit codegen to this namespace only. f+bw+vl+dq is
// the feature set the facade's runtime check requires before dispatching
// here.
#include "sim/gang_engine_prelude.h"

#if VSCRUB_HAVE_ISA_AVX512

#pragma GCC push_options
#pragma GCC target("avx512f,avx512bw,avx512vl,avx512dq")

namespace vscrub {
namespace gang_avx512 {

#include "sim/wide_word.inc"
#include "sim/gang_engine.inc"

std::unique_ptr<GangEngineBase> make_engine_256(
    const PlacedDesign& design, const GangEngineConfig& config) {
  return std::make_unique<GangEngine<4>>(design, config);
}
std::unique_ptr<GangEngineBase> make_engine_512(
    const PlacedDesign& design, const GangEngineConfig& config) {
  return std::make_unique<GangEngine<8>>(design, config);
}

}  // namespace gang_avx512
}  // namespace vscrub

#pragma GCC pop_options

#endif  // VSCRUB_HAVE_ISA_AVX512
