// FabricSim: the configuration-driven FPGA model. Behaviour is decoded from
// the live configuration memory, so flipping any configuration bit changes
// (or provably does not change) what the device computes — sensitivity is
// *emergent*, never annotated.
//
// Faithfulness points the experiments depend on:
//  * Frames are the only configuration access granularity (readback and
//    partial reconfiguration move whole frames).
//  * LUT truth bits are live SRAM cells: in SRL16/RAM16 mode they shift/
//    write at runtime, and readback returns the *current* contents (the
//    paper's §IV-A dynamic-state problem).
//  * Unconnected resource inputs read per-site half-latches (hidden state):
//    initialized only by full configuration's startup sequence, invisible to
//    readback, untouched by partial reconfiguration, flippable by radiation
//    (paper §III-C, Figs. 13/14).
//  * BRAM readback corrupts the block's output register; LUT-RAM readback
//    while the design writes the LUT corrupts the returned frame.
//  * Permanent faults (stuck-at wires/outputs) can be injected underneath
//    the configuration layer for the BIST experiments (§II-B).
#pragma once

#include <memory>
#include <vector>

#include "bitstream/bitstream.h"
#include "common/rng.h"
#include "sim/tile_decode.h"

namespace vscrub {

/// Architectural variants the paper proposes in §IV to remove the
/// readback/partial-reconfiguration limitations of the Virtex generation.
/// All default off (baseline Virtex behaviour); each experiment E13 ablation
/// enables one.
struct ArchVariants {
  /// §IV-A: LUT (and BRAM) state gets "a second 'shadow' memory that can be
  /// read out without affecting design operation": readback never corrupts
  /// — no LUT-RAM write hazard, BRAM output registers survive readback.
  bool shadow_readback = false;
  /// §IV-A alternative: "design the readback of LUTs so that their
  /// locations in the readback stream are set to zeros when the LUTs are
  /// being used in RAM mode. This would allow standard CRC checking to be
  /// done to the bitstream without having to mask out some locations."
  bool zeroed_dynamic_readback = false;
  /// §IV-B: "provide a smaller granularity for read and write accesses to
  /// the configuration data" — enables write_config_bit(), repairs that
  /// touch only the corrupted bits.
  bool bit_granular_access = false;
};

class FabricSim {
 public:
  // Resolved-source encodings (precomputed from the decoded mux codes so the
  // eval loop never re-decodes). Shared with GangSim, whose word-parallel
  // state arrays use the same payload indexing.
  static constexpr u32 kSrcKindShift = 30;
  static constexpr u32 kSrcPayload = (1u << kSrcKindShift) - 1;
  enum : u32 {
    kSrcHalfLatch = 0u << kSrcKindShift,
    kSrcWire = 1u << kSrcKindShift,
    kSrcOutput = 2u << kSrcKindShift,
    kSrcZero = 3u << kSrcKindShift,
  };
  static constexpr u32 kNoTile = 0xFFFFFFFFu;

  /// One tile's decoded configuration plus the derived acceleration caches
  /// refresh_tile_activity() maintains. Exposed (read-only) so GangSim can
  /// run variant lanes with exactly the structures the scalar engine decoded.
  struct Tile : TileConfig {
    std::vector<u8> driven_wires;    ///< wire indices with omux code != 0
    std::vector<u8> connected_pins;  ///< pins with non-half-latch imux codes
    bool active = false;
    bool has_local_feedback = false;  ///< any pin reads an own CLB output
    u8 active_lut_mask = 0;  ///< LUTs that can ever output nonzero
    u8 override_mask = 0;  ///< CLB outputs overridden by the harness
    u8 override_vals = 0;
    u8 lut_base_idx[kLutsPerClb];  ///< index bits from half-latch-fed pins
    u8 lut_dyn_mask[kLutsPerClb];  ///< pins needing dynamic resolution
  };

  explicit FabricSim(std::shared_ptr<const ConfigSpace> space,
                     const ArchVariants& variants = {});

  const ArchVariants& variants() const { return variants_; }

  const ConfigSpace& space() const { return *space_; }
  const DeviceGeometry& geometry() const { return space_->geometry(); }

  // ---- Configuration port -----------------------------------------------------
  /// Writes every frame and runs the startup sequence: FFs assume their init
  /// values, all half-latches assume their startup values, BRAM output
  /// registers clear.
  void full_configure(const Bitstream& bs);
  /// Partial reconfiguration of one frame. No startup sequence: FF values,
  /// half-latches and BRAM output registers are untouched; LUT cells covered
  /// by the frame are overwritten (including live SRL16 contents — the
  /// read-modify-write hazard).
  void write_frame(const FrameAddress& fa, const BitVector& data);
  /// Readback of one frame: the current configuration memory, with LUT cells
  /// reflecting live (possibly shifted) contents. If `clock_running` and the
  /// frame covers an SRL16/RAM16 site that is currently write-enabled, that
  /// site's bits in the returned frame are corrupted; reading a BRAM column
  /// corrupts the output registers of its blocks.
  BitVector read_frame(const FrameAddress& fa, bool clock_running = false);
  /// Convenience single-bit fault injection through the configuration port:
  /// reads the frame image, flips one bit, writes it back (what the SEU
  /// simulator's corrupt/repair steps do, §III-A).
  void flip_config_bit(const BitAddress& addr);
  /// Bit-granular configuration write (§IV-B proposal). Only legal when
  /// variants().bit_granular_access is set; unlike a frame write it cannot
  /// clobber neighbouring dynamic state by construction.
  void write_config_bit(const BitAddress& addr, bool v);
  /// Current value of a configuration bit (live memory).
  bool config_bit(const BitAddress& addr) const;

  // ---- Dirty-frame tracking ---------------------------------------------------
  // Every frame whose *readback content* may have diverged since the last
  // clear_dirty_frames() (or full_configure(), which resets the baseline) is
  // recorded here: partial-reconfiguration writes, runtime SRL16/RAM16 LUT
  // shifts, and BRAM port writes. A frame NOT in this set provably reads
  // back exactly what it held at the baseline — the invariant the SEU
  // injector's incremental repair relies on to skip the whole-column sweep.
  /// Global frame indices dirtied since the last clear (unordered, no
  /// duplicates).
  const std::vector<u32>& dirty_frames() const { return dirty_frames_; }
  bool frame_dirty(u32 global_frame) const {
    return frame_dirty_[global_frame] != 0;
  }
  void clear_dirty_frames();

  // ---- Harness attachment -----------------------------------------------------
  /// Overrides the combinational output `out_index` of `tile` with a
  /// harness-driven value (primary inputs, BRAM relays, external constants).
  void set_drive(TileCoord tile, u8 out_index, bool value);
  void clear_drives();
  /// Value seen at IMUX pin `pin` of `tile` (valid after eval()).
  bool pin_value(TileCoord tile, u8 pin) const;
  /// Value of CLB output `out` of `tile` (valid after eval()).
  bool output_value(TileCoord tile, u8 out) const;

  // ---- Execution ---------------------------------------------------------------
  void eval();
  void clock();
  /// Design reset (the paper's "reset the system"): restores FFs to their
  /// configured init values and clears BRAM output registers. Configuration
  /// memory, SRL16 contents and half-latches are NOT touched (reset is a
  /// logic operation, not a reconfiguration).
  void reset();
  /// Snapshot of every FF's state (used and unused — a corrupted decode can
  /// clock FFs the baseline never uses, and reset() deliberately skips
  /// those). Pairs with restore_ff_state() for hermetic rollback.
  const std::vector<u8>& ff_state_snapshot() const { return ff_state_; }
  /// Restores all FF state from a snapshot taken on this geometry and
  /// re-evaluates. Unlike reset(), covers unused FFs too.
  void restore_ff_state(const std::vector<u8>& state);
  u64 cycle_count() const { return cycle_count_; }
  /// True when the last eval() hit the oscillation bound (a corrupted
  /// configuration formed a combinational loop).
  bool oscillating() const { return oscillating_; }

  // ---- Hidden state / radiation ------------------------------------------------
  /// SEU in a flip-flop's state (paper §II-C: "SEUs in flip-flop states can
  /// occur without disturbing the bitstream") — invisible to readback.
  void flip_ff(TileCoord tile, u8 ff);
  bool ff_value(TileCoord tile, u8 ff) const;
  bool halflatch(TileCoord tile, u8 pin) const;
  void set_halflatch(TileCoord tile, u8 pin, bool v);
  void flip_halflatch(TileCoord tile, u8 pin);
  u64 halflatch_sites() const { return geometry().halflatch_site_count(); }

  // ---- BRAM (virtual port wiring driven by the harness) -------------------------
  struct BramPortIn {
    bool we = false;
    u8 addr = 0;
    u16 din = 0;
  };
  /// Clocks one BRAM block with the given port inputs (WRITE_FIRST).
  void bram_clock(u16 bram_col, u16 block, const BramPortIn& in);
  u16 bram_dout(u16 bram_col, u16 block) const;
  u16 bram_word(u16 bram_col, u16 block, u8 addr) const;

  // ---- Permanent faults ----------------------------------------------------------
  enum class StuckKind : u8 { kWireStuck0, kWireStuck1, kOutputStuck0, kOutputStuck1 };
  struct PermanentFault {
    StuckKind kind = StuckKind::kWireStuck0;
    TileCoord tile;
    Dir dir = Dir::kNorth;  ///< for wire faults
    u8 windex = 0;          ///< for wire faults
    u8 output = 0;          ///< for output faults
  };
  void inject_permanent_fault(const PermanentFault& fault);
  void clear_permanent_faults();

  /// Number of tiles currently active (decoded as used); exposed for tests.
  std::size_t active_tile_count() const;
  /// Whether a tile currently decodes as active (drives wires, computes LUT
  /// outputs, clocks FFs, or reads any routed pin). An inactive tile
  /// consumes nothing and forwards nothing — the SEU injector's
  /// observability pruning builds on exactly this property.
  bool tile_active(TileCoord t) const { return tiles_[tidx(t)].active; }

  // ---- Gang-engine introspection ---------------------------------------------
  // Read-only views of the decoded tiles, resolved sources and value arrays.
  // GangSim mirrors FabricSim's evaluation word-parallel over these exact
  // structures, so they are exposed rather than re-derived.
  const Tile& tile_state(u32 tile) const { return tiles_[tile]; }
  u32 pin_source(u32 tile, u8 pin) const {
    return pin_src_[static_cast<std::size_t>(tile) * kImuxPins + pin];
  }
  u32 wire_source(u32 tile, u8 wire) const {
    return wire_src_[static_cast<std::size_t>(tile) * kWiresPerClb + wire];
  }
  u32 neighbor_index(u32 tile, int dir) const {
    return neighbor_[static_cast<std::size_t>(tile) * kDirs +
                     static_cast<std::size_t>(dir)];
  }
  const std::vector<u8>& wire_values() const { return wire_val_; }
  const std::vector<u8>& out_values() const { return out_val_; }
  const std::vector<u8>& halflatch_values() const { return halflatch_; }

 private:
  u32 tidx(TileCoord t) const { return space_->geometry().tile_index(t); }
  BitVector assemble_frame(const FrameAddress& fa) const;
  void decode_full_tile(TileCoord t);
  void refresh_tile_activity(u32 tile);
  void rebuild_seq_list();
  void mark_dirty(u32 tile);
  void mark_frame_dirty(u32 global_frame);
  void mark_lut_frames_dirty(u32 tile, u8 site);
  void process_tile(u32 tile);
  bool resolve_pin(const Tile& tl, u32 tile, u8 pin) const;

  std::shared_ptr<const ConfigSpace> space_;
  ArchVariants variants_;
  Bitstream cfg_;  ///< live configuration memory (non-LUT bits authoritative)

  std::vector<Tile> tiles_;
  std::vector<u8> wire_val_;    // [tile*96 + dir*24 + w]
  std::vector<u8> out_val_;     // [tile*8 + out]
  std::vector<u8> ff_state_;    // [tile*4 + ff]
  std::vector<u8> halflatch_;   // [tile*28 + pin]
  std::vector<u8> stuck_wire_;  // 0 none, 1 stuck0, 2 stuck1
  std::vector<u8> stuck_out_;   // same encoding, [tile*8 + out]
  bool have_permanent_faults_ = false;

  struct BramState {
    std::vector<u16> dout;  ///< per block
  };
  std::vector<BramState> bram_;  ///< per BRAM column (contents live in cfg_)

  // Precomputed topology / resolved sources.
  std::vector<u32> neighbor_;  // [tile*4 + dir], kNoTile sentinel at edges
  std::vector<u32> pin_src_;   // [tile*28 + pin]
  std::vector<u32> wire_src_;  // [tile*96 + wire]

  // Sequential-element acceleration.
  std::vector<u32> seq_tiles_;
  bool seq_list_stale_ = true;
  struct PendingFf {
    u32 tile;
    u8 ff;
    bool value;
  };
  struct PendingSrl {
    u32 tile;
    u8 site;
    u16 value;
  };
  std::vector<PendingFf> pending_ff_;
  std::vector<PendingSrl> pending_srl_;

  // Dirty-tile worklist.
  std::vector<u32> dirty_queue_;
  std::vector<u8> dirty_flag_;
  // Dirty-frame set (see dirty_frames()).
  std::vector<u32> dirty_frames_;
  std::vector<u8> frame_dirty_;
  bool oscillating_ = false;
  u64 cycle_count_ = 0;
  Rng corrupt_rng_{0xC0FFEE};  ///< deterministic readback-hazard corruption
};

}  // namespace vscrub
