#include "sim/simd.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "sim/gang_isa_support.h"

namespace vscrub {
namespace {

bool cpu_supports(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case SimdIsa::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case SimdIsa::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0;
#else
    case SimdIsa::kAvx2:
    case SimdIsa::kAvx512:
      return false;
#endif
    case SimdIsa::kAuto:
      return true;
  }
  return false;
}

std::string usable_isa_list() {
  std::ostringstream os;
  bool first = true;
  for (SimdIsa isa : compiled_simd_isas()) {
    if (!cpu_supports(isa)) continue;
    if (!first) os << ", ";
    os << simd_isa_name(isa);
    first = false;
  }
  return os.str();
}

}  // namespace

const char* simd_isa_name(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kAuto:
      return "auto";
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kAvx512:
      return "avx512";
  }
  return "?";
}

SimdIsa parse_simd_isa(const std::string& name) {
  if (name.empty() || name == "auto") return SimdIsa::kAuto;
  if (name == "scalar") return SimdIsa::kScalar;
  if (name == "avx2") return SimdIsa::kAvx2;
  if (name == "avx512") return SimdIsa::kAvx512;
  throw SimdIsaError("unknown gang ISA '" + name +
                     "' (valid: auto, scalar, avx2, avx512)");
}

const std::vector<SimdIsa>& compiled_simd_isas() {
  static const std::vector<SimdIsa> isas = [] {
    std::vector<SimdIsa> v;
    v.reserve(3);
    v.push_back(SimdIsa::kScalar);
#if VSCRUB_HAVE_ISA_AVX2
    v.push_back(SimdIsa::kAvx2);
#endif
#if VSCRUB_HAVE_ISA_AVX512
    v.push_back(SimdIsa::kAvx512);
#endif
    return v;
  }();
  return isas;
}

bool simd_isa_usable(SimdIsa isa) {
  if (isa == SimdIsa::kAuto) return true;
  const auto& compiled = compiled_simd_isas();
  if (std::find(compiled.begin(), compiled.end(), isa) == compiled.end()) {
    return false;
  }
  return cpu_supports(isa);
}

SimdIsa resolve_simd_isa(SimdIsa requested) {
  if (requested == SimdIsa::kAuto) {
    if (const char* forced = std::getenv("VSCRUB_FORCE_ISA");
        forced != nullptr && forced[0] != '\0') {
      requested = parse_simd_isa(forced);
      if (requested != SimdIsa::kAuto && !simd_isa_usable(requested)) {
        throw SimdIsaError(std::string("VSCRUB_FORCE_ISA=") + forced +
                           " is not usable in this binary/CPU (usable: " +
                           usable_isa_list() + ")");
      }
    }
  } else if (!simd_isa_usable(requested)) {
    throw SimdIsaError(std::string("gang ISA '") + simd_isa_name(requested) +
                       "' is not usable in this binary/CPU (usable: " +
                       usable_isa_list() + ")");
  }
  if (requested != SimdIsa::kAuto) return requested;
  // Widest usable tier wins; kScalar is always usable.
  SimdIsa best = SimdIsa::kScalar;
  for (SimdIsa isa : compiled_simd_isas()) {
    if (cpu_supports(isa) && static_cast<u8>(isa) > static_cast<u8>(best)) {
      best = isa;
    }
  }
  return best;
}

const GangWidths& supported_gang_widths() {
  static const GangWidths widths = [] {
    GangWidths w;
    w.max_narrow = 64;
    w.wide = {256, 512};
    return w;
  }();
  return widths;
}

bool gang_width_supported(u32 width) {
  const GangWidths& w = supported_gang_widths();
  if (width >= 1 && width <= w.max_narrow) return true;
  return std::find(w.wide.begin(), w.wide.end(), width) != w.wide.end();
}

std::string supported_gang_widths_list() {
  const GangWidths& w = supported_gang_widths();
  std::ostringstream os;
  os << "1.." << w.max_narrow;
  for (u32 wide : w.wide) os << ", " << wide;
  return os.str();
}

void validate_gang_width(u32 width) {
  if (gang_width_supported(width)) return;
  throw GangWidthError("unsupported gang width " + std::to_string(width) +
                       " (this binary supports: " +
                       supported_gang_widths_list() + ")");
}

u32 preferred_gang_width() {
  const SimdIsa isa = resolve_simd_isa(SimdIsa::kAuto);
  u32 native = supported_gang_widths().max_narrow;
  if (isa == SimdIsa::kAvx2) native = 256;
  if (isa == SimdIsa::kAvx512) native = 512;
  return gang_width_supported(native) ? native
                                      : supported_gang_widths().max_narrow;
}

}  // namespace vscrub
