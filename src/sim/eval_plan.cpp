#include "sim/eval_plan.h"

#include <functional>
#include <queue>

namespace vscrub {
namespace {

constexpr u32 kSrcPayload = FabricSim::kSrcPayload;
constexpr u32 kSrcHalfLatch = FabricSim::kSrcHalfLatch;
constexpr u32 kSrcWire = FabricSim::kSrcWire;
constexpr u32 kSrcOutput = FabricSim::kSrcOutput;

/// Maps a resolved-source encoding to a plan operand. `wire_context` selects
/// the interpreter's wire-copy semantics, where anything that is not a wire
/// or an output (half-latches included) reads as constant zero.
EvalPlan::Ref ref_of(u32 enc, bool wire_context) {
  const u32 payload = enc & kSrcPayload;
  switch (enc & ~kSrcPayload) {
    case kSrcWire:
      return {EvalPlan::Arr::kWire, payload};
    case kSrcOutput:
      return {EvalPlan::Arr::kOut, payload};
    case kSrcHalfLatch:
      if (!wire_context) return {EvalPlan::Arr::kHalfLatch, payload};
      return {EvalPlan::Arr::kConstZero, 0};
    default:
      return {EvalPlan::Arr::kConstZero, 0};
  }
}

u8 load_scalar(const EvalPlan::Ref& r, const std::vector<u8>& halflatch,
               const std::vector<u8>& ovr, const std::vector<u8>& outs,
               const std::vector<u8>& wires) {
  switch (r.arr) {
    case EvalPlan::Arr::kOut:
      return outs[r.idx] ? 1 : 0;
    case EvalPlan::Arr::kWire:
      return wires[r.idx] ? 1 : 0;
    case EvalPlan::Arr::kOvr:
      return ovr[r.idx] ? 1 : 0;
    case EvalPlan::Arr::kHalfLatch:
      return halflatch[r.idx] ? 1 : 0;
    case EvalPlan::Arr::kConstOne:
      return 1;
    case EvalPlan::Arr::kConstZero:
      return 0;
  }
  return 0;
}

}  // namespace

const char* eval_plan_error_kind_name(EvalPlanError::Kind kind) {
  switch (kind) {
    case EvalPlanError::Kind::kCombinationalCycle:
      return "combinational-cycle";
    case EvalPlanError::Kind::kIndexOutOfRange:
      return "index-out-of-range";
    case EvalPlanError::Kind::kDuplicateWriter:
      return "duplicate-writer";
    case EvalPlanError::Kind::kTopologyViolation:
      return "topology-violation";
    case EvalPlanError::Kind::kBadOpKind:
      return "bad-op-kind";
  }
  return "?";
}

void EvalPlan::validate() const {
  const auto fail = [](EvalPlanError::Kind kind, const std::string& detail) {
    throw EvalPlanError(
        kind, std::string("eval plan rejected (") +
                  eval_plan_error_kind_name(kind) + "): " + detail);
  };
  // Node id space: outputs then wires. ~0 marks "not written by the plan".
  const std::size_t nodes =
      static_cast<std::size_t>(num_outs) + static_cast<std::size_t>(num_wires);
  std::vector<u32> writer_pos(nodes, ~u32{0});

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    const std::string at = "op " + std::to_string(i);
    if (op.kind != OpKind::kLut && op.kind != OpKind::kCopy) {
      fail(EvalPlanError::Kind::kBadOpKind, at + " has unknown kind");
    }
    std::size_t node;
    if (op.dst_arr == Arr::kOut) {
      if (op.dst >= num_outs) {
        fail(EvalPlanError::Kind::kIndexOutOfRange,
             at + " writes output " + std::to_string(op.dst) + " of " +
                 std::to_string(num_outs));
      }
      node = op.dst;
    } else if (op.dst_arr == Arr::kWire) {
      if (op.dst >= num_wires) {
        fail(EvalPlanError::Kind::kIndexOutOfRange,
             at + " writes wire " + std::to_string(op.dst) + " of " +
                 std::to_string(num_wires));
      }
      node = static_cast<std::size_t>(num_outs) + op.dst;
    } else {
      fail(EvalPlanError::Kind::kBadOpKind,
           at + " writes a read-only array");
      return;  // unreachable; placates flow analysis
    }
    if (writer_pos[node] != ~u32{0}) {
      fail(EvalPlanError::Kind::kDuplicateWriter,
           at + " rewrites a destination op " +
               std::to_string(writer_pos[node]) + " already wrote");
    }
    writer_pos[node] = static_cast<u32>(i);

    const int nsrc = op.kind == OpKind::kLut ? kLutInputs : 1;
    for (int k = 0; k < nsrc; ++k) {
      const Ref& r = op.src[k];
      switch (r.arr) {
        case Arr::kOut:
        case Arr::kOvr:
          if (r.idx >= num_outs) {
            fail(EvalPlanError::Kind::kIndexOutOfRange,
                 at + " reads output " + std::to_string(r.idx) + " of " +
                     std::to_string(num_outs));
          }
          break;
        case Arr::kWire:
          if (r.idx >= num_wires) {
            fail(EvalPlanError::Kind::kIndexOutOfRange,
                 at + " reads wire " + std::to_string(r.idx) + " of " +
                     std::to_string(num_wires));
          }
          break;
        case Arr::kHalfLatch:
          if (r.idx >= num_halflatches) {
            fail(EvalPlanError::Kind::kIndexOutOfRange,
                 at + " reads half-latch " + std::to_string(r.idx) + " of " +
                     std::to_string(num_halflatches));
          }
          break;
        case Arr::kConstZero:
        case Arr::kConstOne:
          break;
        default:
          fail(EvalPlanError::Kind::kBadOpKind,
               at + " reads an unknown array");
      }
    }
  }

  // Second pass for topology: every plan-computed operand's writer must
  // precede the reader.
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    const int nsrc = op.kind == OpKind::kLut ? kLutInputs : 1;
    for (int k = 0; k < nsrc; ++k) {
      const Ref& r = op.src[k];
      std::size_t src_node = nodes;
      if (r.arr == Arr::kOut) src_node = r.idx;
      if (r.arr == Arr::kWire) {
        src_node = static_cast<std::size_t>(num_outs) + r.idx;
      }
      if (src_node >= nodes) continue;
      const u32 w = writer_pos[src_node];
      if (w != ~u32{0} && w >= i) {
        fail(EvalPlanError::Kind::kTopologyViolation,
             "op " + std::to_string(i) + " reads a value op " +
                 std::to_string(w) + " writes later");
      }
    }
  }
}

EvalPlan compile_eval_plan(const FabricSim& fabric,
                           const std::vector<u8>& ovr_mask) {
  const u32 ntiles = fabric.geometry().tile_count();
  VSCRUB_CHECK(ovr_mask.size() == ntiles,
               "override-mask size does not match the device");

  EvalPlan plan;
  plan.num_outs = ntiles * static_cast<u32>(kClbOutputs);
  plan.num_wires = ntiles * static_cast<u32>(kWiresPerClb);
  plan.num_halflatches =
      static_cast<u32>(fabric.halflatch_values().size());

  // Emit ops tile-major (good execution locality when the schedule happens
  // to already be topological); record each plan node's op index for the
  // dependency edges.
  const std::size_t nodes = static_cast<std::size_t>(plan.num_outs) +
                            static_cast<std::size_t>(plan.num_wires);
  constexpr u32 kNoOp = ~u32{0};
  std::vector<u32> node_op(nodes, kNoOp);
  const auto node_of = [&](const EvalPlan::Ref& r) -> std::size_t {
    if (r.arr == EvalPlan::Arr::kOut) return r.idx;
    if (r.arr == EvalPlan::Arr::kWire) {
      return static_cast<std::size_t>(plan.num_outs) + r.idx;
    }
    return nodes;
  };

  for (u32 t = 0; t < ntiles; ++t) {
    const FabricSim::Tile& tl = fabric.tile_state(t);
    const u8 ovr = ovr_mask[t];
    if (!tl.active && ovr == 0) continue;
    const u32 ob = t * static_cast<u32>(kClbOutputs);
    const u32 wb = t * static_cast<u32>(kWiresPerClb);

    for (int l = 0; l < kLutsPerClb; ++l) {
      const int out = (l / 2) * 4 + (l % 2);
      const u8 mask = static_cast<u8>(1u << out);
      const bool overridden = (ovr & mask) != 0;
      if (!(tl.active_lut_mask & (1u << l)) && !overridden) continue;
      EvalPlan::Op op;
      op.dst_arr = EvalPlan::Arr::kOut;
      op.dst = ob + static_cast<u32>(out);
      if (overridden) {
        op.kind = EvalPlan::OpKind::kCopy;
        op.src[0] = {EvalPlan::Arr::kOvr, op.dst};
      } else {
        op.kind = EvalPlan::OpKind::kLut;
        op.cells = tl.lut_cells[l];
        for (int i = 0; i < kLutInputs; ++i) {
          if (tl.lut_dyn_mask[l] & (1u << i)) {
            op.src[i] = ref_of(
                fabric.pin_source(t, static_cast<u8>(lut_input_pin(l, i))),
                /*wire_context=*/false);
          } else {
            op.src[i] = {(tl.lut_base_idx[l] >> i) & 1
                             ? EvalPlan::Arr::kConstOne
                             : EvalPlan::Arr::kConstZero,
                         0};
          }
        }
      }
      node_op[op.dst] = static_cast<u32>(plan.ops.size());
      plan.ops.push_back(op);
    }

    for (u8 wire : tl.driven_wires) {
      EvalPlan::Op op;
      op.kind = EvalPlan::OpKind::kCopy;
      op.dst_arr = EvalPlan::Arr::kWire;
      op.dst = wb + wire;
      op.src[0] = ref_of(fabric.wire_source(t, wire), /*wire_context=*/true);
      node_op[static_cast<std::size_t>(plan.num_outs) + op.dst] =
          static_cast<u32>(plan.ops.size());
      plan.ops.push_back(op);
    }
  }

  // Kahn's algorithm over op dependencies, lowest-op-index first: the order
  // is deterministic and keeps the emission (tile-major) locality wherever
  // the dependencies allow.
  const std::size_t nops = plan.ops.size();
  std::vector<u32> indeg(nops, 0);
  std::vector<std::vector<u32>> dependents(nops);
  for (std::size_t i = 0; i < nops; ++i) {
    const EvalPlan::Op& op = plan.ops[i];
    const int nsrc = op.kind == EvalPlan::OpKind::kLut ? kLutInputs : 1;
    for (int k = 0; k < nsrc; ++k) {
      const std::size_t n = node_of(op.src[k]);
      if (n >= nodes) continue;
      const u32 w = node_op[n];
      if (w == kNoOp) continue;  // external input (FF output, undriven wire)
      ++indeg[i];
      dependents[w].push_back(static_cast<u32>(i));
    }
  }
  std::priority_queue<u32, std::vector<u32>, std::greater<u32>> ready;
  for (std::size_t i = 0; i < nops; ++i) {
    if (indeg[i] == 0) ready.push(static_cast<u32>(i));
  }
  std::vector<EvalPlan::Op> ordered;
  ordered.reserve(nops);
  while (!ready.empty()) {
    const u32 i = ready.top();
    ready.pop();
    ordered.push_back(plan.ops[i]);
    for (u32 d : dependents[i]) {
      if (--indeg[d] == 0) ready.push(d);
    }
  }
  if (ordered.size() != nops) {
    throw EvalPlanError(
        EvalPlanError::Kind::kCombinationalCycle,
        "eval plan rejected (combinational-cycle): " +
            std::to_string(nops - ordered.size()) +
            " of " + std::to_string(nops) +
            " ops form a combinational loop in the configured design");
  }
  plan.ops = std::move(ordered);

  // Compiler self-check: the executor's invariants hold by construction,
  // but a cheap one-time validate() keeps that claim tested on every design
  // rather than asserted in a comment.
  plan.validate();
  return plan;
}

void plan_execute(const EvalPlan& plan, const std::vector<u8>& halflatch,
                  const std::vector<u8>& ovr, std::vector<u8>& outs,
                  std::vector<u8>& wires) {
  VSCRUB_CHECK(outs.size() == plan.num_outs &&
                   wires.size() == plan.num_wires &&
                   ovr.size() == plan.num_outs &&
                   halflatch.size() == plan.num_halflatches,
               "plan_execute array sizes do not match the plan");
  for (const EvalPlan::Op& op : plan.ops) {
    u8 v;
    if (op.kind == EvalPlan::OpKind::kLut) {
      unsigned idx = 0;
      for (int k = 0; k < kLutInputs; ++k) {
        idx |= static_cast<unsigned>(
                   load_scalar(op.src[k], halflatch, ovr, outs, wires))
               << k;
      }
      v = (op.cells >> idx) & 1;
    } else {
      v = load_scalar(op.src[0], halflatch, ovr, outs, wires);
    }
    if (op.dst_arr == EvalPlan::Arr::kOut) {
      outs[op.dst] = v;
    } else {
      wires[op.dst] = v;
    }
  }
}

}  // namespace vscrub
