// Shared prelude for the per-ISA gang engine translation units. Every
// dependency of wide_word.inc / gang_engine.inc is included here, at global
// scope, BEFORE the TU opens its ISA namespace and (for the AVX tiers) its
// target pragma — so no std/vscrub inline function is ever compiled under a
// vector ISA the host CPU might lack. Keep this the TUs' only #include.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "sim/gang_engine.h"
