// Runtime SIMD instruction-set selection for the wide gang engine.
//
// The gang engine's word loops are compiled three times — once per ISA tier
// (portable scalar u64 arrays, AVX2, AVX-512) — into separate translation
// units whose engine namespaces sit under the matching `#pragma GCC target`
// (see gang_engine_prelude.h for why that is SIGILL-safe). This header is
// the dispatch
// surface: which tiers the binary carries, which the host CPU can run, and
// which one a run should use. Selection is a pure performance knob: every
// tier executes the identical lane-for-lane algorithm, so verdicts are
// bit-identical across ISAs (the differential suite in tests/test_gang_wide
// enforces exactly that).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace vscrub {

enum class SimdIsa : u8 {
  kAuto = 0,    ///< pick the best compiled-in tier the CPU supports
  kScalar = 1,  ///< portable u64-array words (always available)
  kAvx2 = 2,    ///< 256-bit words, one lane-op per 4 u64 limbs
  kAvx512 = 3,  ///< 512-bit words, one lane-op per 8 u64 limbs
};

const char* simd_isa_name(SimdIsa isa);

/// Typed error for unusable --gang-isa / gang_isa values: unknown names,
/// tiers not compiled into this binary, tiers the host CPU lacks.
class SimdIsaError : public Error {
 public:
  explicit SimdIsaError(const std::string& what) : Error(what) {}
};

/// Parses "auto" | "scalar" | "avx2" | "avx512" (empty = auto).
/// Throws SimdIsaError on anything else, listing the valid names.
SimdIsa parse_simd_isa(const std::string& name);

/// ISA tiers compiled into this binary (always contains kScalar).
const std::vector<SimdIsa>& compiled_simd_isas();
/// Whether `isa` is both compiled in and supported by the host CPU.
bool simd_isa_usable(SimdIsa isa);

/// Resolves a requested tier to the one a run will execute. kAuto picks the
/// widest usable tier, unless the VSCRUB_FORCE_ISA environment variable
/// names one (the test/CI override: a forced-scalar leg runs the identical
/// binary with every auto-selected run pinned to the fallback). An explicit
/// non-auto request beats the environment; requesting an unusable tier
/// throws SimdIsaError naming the usable ones.
SimdIsa resolve_simd_isa(SimdIsa requested);

/// Gang lane widths this binary supports: 1..64 (the u64 engine, optionally
/// lane-capped) plus each wide word width compiled in (256, 512).
struct GangWidths {
  u32 max_narrow = 64;      ///< every width in [1, max_narrow] is valid
  std::vector<u32> wide;    ///< exact wide widths (256, 512)
};
const GangWidths& supported_gang_widths();
bool gang_width_supported(u32 width);
/// One-line human list, e.g. "1..64, 256, 512".
std::string supported_gang_widths_list();

/// Typed error for unsupported --gang-width / gang_width values. Widths
/// above the supported maximum (or in the gaps between wide words) are
/// rejected here rather than silently clamped; the message lists the widths
/// compiled into this binary.
class GangWidthError : public Error {
 public:
  explicit GangWidthError(const std::string& what) : Error(what) {}
};
/// Throws GangWidthError unless gang_width_supported(width).
void validate_gang_width(u32 width);

/// The widest gang width the auto-resolved SIMD tier runs natively: 512 when
/// resolve_simd_isa(kAuto) picks AVX-512, 256 for AVX2, max_narrow (64) for
/// scalar. Honors VSCRUB_FORCE_ISA through the resolver, so a forced-scalar
/// leg prefers 64. This is a throughput default only — every width computes
/// identical verdicts.
u32 preferred_gang_width();

}  // namespace vscrub
