#include "sim/tile_decode.h"

namespace vscrub {

void decode_tile_config(const Bitstream& cfg, TileCoord tc, TileConfig& tl) {
  for (int l = 0; l < kLutsPerClb; ++l) {
    tl.lut_cells[l] = cfg.lut_truth(tc, l);
    tl.lut_mode[l] = cfg.lut_mode(tc, l);
  }
  for (int f = 0; f < kFfsPerClb; ++f) {
    tl.ff_init[f] = cfg.ff_init(tc, f);
    tl.ff_used[f] = cfg.ff_used(tc, f);
    tl.ff_byp[f] = cfg.ff_dsrc_bypass(tc, f);
  }
  for (int s = 0; s < kSlicesPerClb; ++s) tl.clk_en[s] = cfg.slice_clk_en(tc, s);
  for (int p = 0; p < kImuxPins; ++p) tl.imux[p] = cfg.imux_code(tc, p);
  for (int d = 0; d < kDirs; ++d) {
    for (int w = 0; w < kWiresPerDir; ++w) {
      tl.omux[d * kWiresPerDir + w] = cfg.omux_code(tc, static_cast<Dir>(d), w);
    }
  }
}

bool apply_tile_bit(TileConfig& tl, u16 tile_bit, bool v) {
  const BitMeaning& m = ConfigSpace::meaning_of_tile_bit(tile_bit);
  switch (m.kind) {
    case FieldKind::kLutTruth: {
      // Live cell write: this is where partial reconfiguration clobbers
      // shifting SRL16 contents (the RMW problem).
      const u16 mask = static_cast<u16>(1u << m.bit);
      const u16 cell = tl.lut_cells[m.unit];
      const u16 nxt =
          v ? static_cast<u16>(cell | mask) : static_cast<u16>(cell & ~mask);
      if (nxt == cell) return false;
      tl.lut_cells[m.unit] = nxt;
      return true;
    }
    case FieldKind::kLutMode: {
      u8 code = static_cast<u8>(tl.lut_mode[m.unit]);
      code = static_cast<u8>((code & ~(1u << m.bit)) |
                             (static_cast<u32>(v) << m.bit));
      const LutMode mode = code == 3 ? LutMode::kLut : static_cast<LutMode>(code);
      if (mode == tl.lut_mode[m.unit]) return false;
      tl.lut_mode[m.unit] = mode;
      return true;
    }
    case FieldKind::kFfInit: {
      const bool changed = tl.ff_init[m.unit] != v;
      tl.ff_init[m.unit] = v;
      return changed;
    }
    case FieldKind::kFfUsed: {
      const bool changed = tl.ff_used[m.unit] != v;
      tl.ff_used[m.unit] = v;
      return changed;
    }
    case FieldKind::kFfDSrc: {
      const bool changed = tl.ff_byp[m.unit] != v;
      tl.ff_byp[m.unit] = v;
      return changed;
    }
    case FieldKind::kSliceClkEn: {
      const bool changed = tl.clk_en[m.unit] != v;
      tl.clk_en[m.unit] = v;
      return changed;
    }
    case FieldKind::kImux: {
      u8 code = tl.imux[m.unit];
      code = static_cast<u8>((code & ~(1u << m.bit)) |
                             (static_cast<u32>(v) << m.bit));
      const bool changed = code != tl.imux[m.unit];
      tl.imux[m.unit] = code;
      return changed;
    }
    case FieldKind::kOmux: {
      u8 code = tl.omux[m.unit];
      code = static_cast<u8>((code & ~(1u << m.bit)) |
                             (static_cast<u32>(v) << m.bit));
      const bool changed = code != tl.omux[m.unit];
      tl.omux[m.unit] = code;
      return changed;
    }
    case FieldKind::kPad:
      break;
  }
  return false;
}

}  // namespace vscrub
