// GangSim: the bit-sliced gang evaluator. Packs up to 63 injection
// candidates plus one golden reference into a single simulation by widening
// every wire/output/FF value to a u64 word whose bit *i* carries lane *i*'s
// logic value (lane 0 is reserved for the uncorrupted golden design).
//
// The engine reuses FabricSim's decoded tile structures, resolved-source
// encodings, dirty-queue event sweep and settle semantics — the word-level
// pass is, per lane, exactly the scalar pass — so gang results are
// bit-for-bit identical to running SeuInjector::inject() per candidate.
// Each lane's configuration delta is confined to one tile (a configuration
// bit decodes into exactly one tile's field); that tile is re-evaluated
// per-lane with the variant decode and its bits spliced back into the words,
// while every other tile is evaluated once for all 64 lanes.
//
// Early exit: once a lane's configuration is repaired (the persistence
// phase), its state is a pure function of state the golden lane also holds —
// the cycle its divergence mask goes to zero with no pending FF delta it can
// never diverge again, so the lane retires with a non-persistent verdict.
// Lanes whose evaluation the engine cannot reproduce exactly (a corrupted
// decode oscillating past the eval bound) come back flagged `fallback` and
// must be re-run through the scalar path.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "pnr/placed_design.h"
#include "sim/fabric_sim.h"
#include "sim/harness.h"

namespace vscrub {

class GangSim {
 public:
  /// Word width: 63 candidate lanes + the golden lane in bit 0.
  static constexpr int kMaxLanes = 64;
  static constexpr int kMaxVariants = kMaxLanes - 1;

  /// Verdict for one candidate lane; field meanings match InjectionResult.
  struct LaneResult {
    bool fallback = false;  ///< verdict unavailable: re-run the scalar path
    bool output_error = false;
    bool persistent = false;
    u32 first_error_cycle = 0;
    u64 error_output_mask_lo = 0;
  };

  /// Run schedule; mirrors the InjectionOptions fields the scalar loop uses.
  struct RunParams {
    u32 warmup_cycles = 0;
    u32 observe_cycles = 0;
    bool classify_persistence = false;
    u32 persistence_settle = 0;
    u32 persistence_check = 0;
    u64 stim_seed = 7;
    /// Reference output trace (from the netlist simulator). The golden lane
    /// self-checks against it every compared cycle; a mismatch aborts the
    /// run with every undecided lane flagged fallback.
    const std::vector<OutputWord>* golden = nullptr;
  };

  struct RunStats {
    u64 cycles_run = 0;
    u64 cycles_full = 0;  ///< cycles the run would take with no early exit
    bool early_exit = false;
  };

  /// Requires a gang-capable design: no BRAM bindings and no legitimate
  /// dynamic LUT state (flips may still *create* SRL16/RAM16 sites — those
  /// are modeled per-lane).
  explicit GangSim(const PlacedDesign& design);

  /// Evaluates `count` (<= kMaxVariants) candidate bit flips against one
  /// shared stimulus stream; results[i] is the verdict for addrs[i].
  void run(const BitAddress* addrs, std::size_t count, const RunParams& p,
           LaneResult* results, RunStats* stats);

 private:
  struct Variant {
    int lane = 0;
    u32 tile = 0;
    FabricSim::Tile cfg;  ///< corrupted decode, incl. derived caches
    std::array<u32, kImuxPins> pin_src;
    std::array<u32, kWiresPerClb> wire_src;
    bool seq = false;      ///< variant decode participates in clocking
    bool repaired = false; ///< overlay dropped: lane follows golden structure
    u16 pending_cells[kLutsPerClb] = {};  ///< sampled SRL16/RAM16 next state
    u8 cells_pending = 0;
    i32 next = -1;  ///< chain of variants sharing a tile
  };

  struct Pending {
    u32 tile;
    u8 ff;
    u64 word;   ///< sampled next-state, one bit per lane
    u64 wmask;  ///< lanes whose structure actually clocks this FF
  };

  u64 splat(u8 v) const { return v ? ~u64{0} : u64{0}; }
  u64 resolve_word(u32 enc) const;
  u8 lane_of(u32 enc, int lane) const {
    return static_cast<u8>((resolve_word(enc) >> lane) & 1);
  }
  void mark_dirty(u32 t);
  void mark_neighbors_dirty(u32 t);
  bool install_variant(const BitAddress& addr, int lane);
  void settle_lane_decode(u32 t, int lane, const FabricSim::Tile& cfg,
                          const u32* wire_src);
  void repair_lane(int lane);
  void process_tile(u32 t);
  void golden_pass(u32 t);
  void variant_pass(Variant& v, u8* outs);
  void update_div(u32 t);
  u64 global_div();
  void eval();
  void clock_words();
  void apply_inputs(Stimulus& stim);
  void capture_taps();

  const PlacedDesign* design_;
  FabricSim golden_;       ///< pristine configured fabric: decode oracle and
                           ///< word-baseline source (never clocked)
  DesignHarness harness_;  ///< used once, to configure golden_
  u32 ntiles_ = 0;
  const std::vector<u8>* hl_ = nullptr;  ///< golden half-latch values

  // Splatted baseline state, memcpy'd into the live words at run start.
  std::vector<u64> base_out_w_, base_wire_w_, base_ff_w_;
  std::vector<u64> out_w_, wire_w_, ff_w_;

  // Harness overrides (identical across lanes, stored as splat words).
  std::vector<u8> base_ovr_mask_, ovr_mask_;
  std::vector<u64> base_ovr_w_, ovr_w_;
  std::vector<u8> drive_mask_;  ///< static per-tile input-drive out mask

  std::vector<u8> base_active_, gang_active_;
  std::vector<u8> golden_seq_flag_;
  std::vector<u32> golden_seq_;

  std::vector<u8> dirty_flag_;
  std::vector<u32> dirty_queue_;

  std::vector<Variant> variants_;
  std::vector<i32> tile_vhead_;
  std::vector<u8> tile_has_var_;
  std::vector<u32> variant_tiles_;

  // Per-tile lane-divergence masks (lane bit set => that lane's state in
  // this tile differs from the golden lane's).
  std::vector<u64> tile_div_;
  std::vector<u8> div_flag_;
  std::vector<u32> div_tiles_;

  std::vector<Pending> pending_;
  std::vector<u32> pend_slot_;   // [tile*4+ff] -> pending index + 1
  std::vector<u32> pend_epoch_;  // slot valid iff epoch matches
  u32 clock_epoch_ = 0;

  struct Drive {
    u32 tile;
    u8 out;
  };
  struct Tap {
    u32 tile;
    u8 pin;
  };
  std::vector<Drive> drives_;
  std::vector<Tap> taps_;
  std::vector<u8> input_bits_;
  std::vector<u64> tap_w_;

  bool eval_bound_hit_ = false;
};

}  // namespace vscrub
