// GangSim: the bit-sliced gang evaluator. Packs injection candidates plus
// one golden reference into a single simulation by widening every
// wire/output/FF value to a lane word whose bit *i* carries lane *i*'s logic
// value (lane 0 is reserved for the uncorrupted golden design).
//
// The engine reuses FabricSim's decoded tile structures, resolved-source
// encodings, dirty-queue event sweep and settle semantics — the word-level
// pass is, per lane, exactly the scalar pass — so gang results are
// bit-for-bit identical to running SeuInjector::inject() per candidate.
// Each lane's configuration delta is confined to one tile (a configuration
// bit decodes into exactly one tile's field); that tile is re-evaluated
// per-lane with the variant decode and its bits spliced back into the words,
// while every other tile is evaluated once for all lanes.
//
// This class is a thin dispatching facade. The actual engine is a template
// over the lane word — 64 lanes in one u64 limb, 256 in four, 512 in eight —
// instantiated once per SIMD tier (scalar / AVX2 / AVX-512, see sim/simd.h)
// in separate translation units so each tier's word loops compile to its
// native vector width. Width and tier are pure performance knobs: every
// combination produces identical verdicts, which tests/test_gang_wide
// asserts differentially. On top of the word widening, the engine executes
// golden combinational settles from an ahead-of-time compiled eval plan
// (sim/eval_plan.h) when the design's active cone is acyclic, falling back
// to the interpreted dirty-queue sweep otherwise.
//
// Early exit: once a lane's configuration is repaired (the persistence
// phase), its state is a pure function of state the golden lane also holds —
// the cycle its divergence mask goes to zero with no pending FF delta it can
// never diverge again, so the lane retires with a non-persistent verdict.
// Lanes whose evaluation the engine cannot reproduce exactly (a corrupted
// decode oscillating past the eval bound) come back flagged `fallback` and
// must be re-run through the scalar path.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "pnr/placed_design.h"
#include "sim/harness.h"
#include "sim/simd.h"

namespace vscrub {

class GangEngineBase;

/// Engine selection. Every combination is verdict-identical; see
/// validate_gang_width() / resolve_simd_isa() for the legal values and the
/// typed errors unsupported ones raise.
struct GangOptions {
  /// Lane-word width: 1..64 runs the u64 engine (lane-capped below 64),
  /// 256/512 run the wide engines. Unsupported widths throw GangWidthError.
  u32 width = 64;
  /// SIMD tier for the wide engines (widths <= 64 always execute the scalar
  /// u64 loops — one limb leaves nothing to vectorize). kAuto resolves to
  /// the widest usable tier, honouring the VSCRUB_FORCE_ISA override.
  SimdIsa isa = SimdIsa::kAuto;
  /// Execute golden settles from the compiled eval plan when the design
  /// admits one. Purely a scheduling choice — verdicts (and verdict-cache
  /// keys) are identical either way.
  bool use_plan = true;

  GangOptions& with_width(u32 w) { width = w; return *this; }
  GangOptions& with_isa(SimdIsa i) { isa = i; return *this; }
  GangOptions& with_plan(bool on) { use_plan = on; return *this; }
};

class GangSim {
 public:
  /// Word width of the baseline u64 engine (back-compat constants; the live
  /// limits are width()/max_variants()).
  static constexpr int kMaxLanes = 64;
  static constexpr int kMaxVariants = kMaxLanes - 1;

  /// Verdict for one candidate lane; field meanings match InjectionResult.
  struct LaneResult {
    bool fallback = false;  ///< verdict unavailable: re-run the scalar path
    bool output_error = false;
    bool persistent = false;
    u32 first_error_cycle = 0;
    u64 error_output_mask_lo = 0;
  };

  /// Run schedule; mirrors the InjectionOptions fields the scalar loop uses.
  struct RunParams {
    u32 warmup_cycles = 0;
    u32 observe_cycles = 0;
    bool classify_persistence = false;
    u32 persistence_settle = 0;
    u32 persistence_check = 0;
    u64 stim_seed = 7;
    /// Reference output trace (from the netlist simulator). The golden lane
    /// self-checks against it every compared cycle; a mismatch aborts the
    /// run with every undecided lane flagged fallback.
    const std::vector<OutputWord>* golden = nullptr;
  };

  struct RunStats {
    u64 cycles_run = 0;
    u64 cycles_full = 0;  ///< cycles the run would take with no early exit
    bool early_exit = false;
  };

  /// Requires a gang-capable design: no BRAM bindings and no legitimate
  /// dynamic LUT state (flips may still *create* SRL16/RAM16 sites — those
  /// are modeled per-lane). Throws GangWidthError / SimdIsaError on
  /// unsupported options.width / options.isa.
  explicit GangSim(const PlacedDesign& design, const GangOptions& options = {});
  ~GangSim();

  /// Evaluates `count` (<= max_variants()) candidate bit flips against one
  /// shared stimulus stream; results[i] is the verdict for addrs[i].
  void run(const BitAddress* addrs, std::size_t count, const RunParams& p,
           LaneResult* results, RunStats* stats);

  /// Candidate lanes per run: width - 1 (one lane is the golden reference).
  int max_variants() const { return max_variants_; }
  u32 width() const { return width_; }
  /// The SIMD tier actually executing (kScalar for widths <= 64).
  SimdIsa isa() const { return isa_; }
  /// Whether golden settles run from the compiled plan (false when the
  /// design's cone is cyclic, or when GangOptions::use_plan was off).
  bool plan_active() const;
  /// Why the plan is off ("" while it is on).
  const std::string& plan_note() const;

 private:
  std::unique_ptr<GangEngineBase> engine_;
  u32 width_ = 64;
  SimdIsa isa_ = SimdIsa::kScalar;
  int max_variants_ = kMaxVariants;
};

}  // namespace vscrub
