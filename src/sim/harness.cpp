#include "sim/harness.h"

#include "netlist/refsim.h"

namespace vscrub {

DesignHarness::DesignHarness(const PlacedDesign& design, FabricSim& sim,
                             u64 stim_seed)
    : design_(&design),
      sim_(&sim),
      stimulus_(design.netlist->num_inputs(), stim_seed) {}

void DesignHarness::configure() {
  sim_->full_configure(design_->bitstream);
  restart();
}

void DesignHarness::restart() {
  sim_->reset();
  stimulus_.restart();
  cycle_ = 0;
  for (const auto& ec : design_->external_consts) {
    sim_->set_drive(ec.drive.tile, ec.drive.out_index, ec.value);
  }
}

void DesignHarness::apply_cycle_inputs() {
  stimulus_.next(input_bits_);
  for (std::size_t i = 0; i < design_->input_drives.size(); ++i) {
    const DrivePoint& dp = design_->input_drives[i];
    sim_->set_drive(dp.tile, dp.out_index, input_bits_[i] != 0);
  }
  // BRAM registered outputs (value after the previous clock edge).
  for (const auto& binding : design_->brams) {
    const u16 dout = sim_->bram_dout(binding.bram_col, binding.block);
    for (std::size_t lane = 0; lane < binding.dout_drives.size(); ++lane) {
      if (!binding.dout_drive_valid[lane]) continue;
      const DrivePoint& dp = binding.dout_drives[lane];
      sim_->set_drive(dp.tile, dp.out_index, (dout >> lane) & 1);
    }
  }
}

void DesignHarness::capture_outputs() {
  OutputWord word;
  const std::size_t n = design_->output_taps.size();
  for (std::size_t i = 0; i < n && i < 128; ++i) {
    const TapPoint& tap = design_->output_taps[i];
    if (sim_->pin_value(tap.tile, tap.pin)) {
      if (i < 64) {
        word.lo |= u64{1} << i;
      } else {
        word.hi |= u64{1} << (i - 64);
      }
    }
  }
  last_outputs_ = word;
}

void DesignHarness::step() {
  apply_cycle_inputs();
  sim_->eval();
  capture_outputs();
  // Sample BRAM port inputs before the edge.
  struct Sampled {
    u16 col, block;
    FabricSim::BramPortIn in;
  };
  std::vector<Sampled> sampled;
  sampled.reserve(design_->brams.size());
  for (const auto& binding : design_->brams) {
    FabricSim::BramPortIn in;
    auto pin_val = [&](std::size_t pin) -> bool {
      if (binding.input_tap_valid[pin]) {
        const TapPoint& tap = binding.input_taps[pin];
        return sim_->pin_value(tap.tile, tap.pin);
      }
      return binding.const_pin_values[pin] != 0;
    };
    in.we = pin_val(0);
    for (std::size_t i = 0; i < 8; ++i) {
      if (pin_val(1 + i)) in.addr |= static_cast<u8>(1u << i);
    }
    for (std::size_t i = 0; i < 16; ++i) {
      if (pin_val(9 + i)) in.din |= static_cast<u16>(1u << i);
    }
    sampled.push_back({binding.bram_col, binding.block, in});
  }
  sim_->clock();
  for (const Sampled& s : sampled) {
    sim_->bram_clock(s.col, s.block, s.in);
  }
  ++cycle_;
}

void DesignHarness::run(std::size_t cycles) {
  for (std::size_t i = 0; i < cycles; ++i) step();
}

std::vector<OutputWord> DesignHarness::reference_trace(const Netlist& nl,
                                                       std::size_t cycles,
                                                       u64 stim_seed) {
  RefSim ref(nl);
  Stimulus stim(nl.num_inputs(), stim_seed);
  std::vector<u8> bits;
  std::vector<OutputWord> trace;
  trace.reserve(cycles);
  ref.reset();
  for (std::size_t t = 0; t < cycles; ++t) {
    stim.next(bits);
    for (std::size_t i = 0; i < bits.size(); ++i) ref.set_input(i, bits[i] != 0);
    ref.eval();
    OutputWord word;
    const std::size_t n = nl.num_outputs();
    for (std::size_t i = 0; i < n && i < 128; ++i) {
      if (ref.output(i)) {
        if (i < 64) {
          word.lo |= u64{1} << i;
        } else {
          word.hi |= u64{1} << (i - 64);
        }
      }
    }
    trace.push_back(word);
    ref.clock();
  }
  return trace;
}

}  // namespace vscrub
