// Ahead-of-time compiled evaluation plan for the gang engine.
//
// FabricSim (and the gang engine mirroring it) evaluates combinational logic
// by interpreting the fabric graph per cycle: a dirty-tile worklist, per-tile
// switches over resolved-source encodings, bounded re-passes for local
// feedback. That is the right machinery for *corrupted* decodes — they can
// form loops and oscillators — but the golden structure of a compiled design
// is a fixed acyclic dataflow graph, re-discovered identically millions of
// times per campaign.
//
// compile_eval_plan() topologically sorts the active cone once per design
// into a flat, branch-free op array: one op per live LUT output, per
// harness-overridden output and per driven wire, each reading its inputs
// from the same flat out/wire value arrays the interpreter uses (so the two
// evaluators are interchangeable mid-run). The wide-word engine executes the
// array front-to-back per settle; lanes whose configuration diverges from
// golden are then re-evaluated by the interpreter sweep on top, confined to
// their divergence cones.
//
// A plan is pure schedule, not behaviour: it never changes what any lane
// computes, only the order in which the golden fixpoint is reached. Verdicts
// — and therefore verdict-cache keys — are independent of whether a plan is
// in use. Designs whose golden cone is *not* acyclic (a configured
// combinational loop) are rejected with a typed error and the engine stays
// on the interpreter.
#pragma once

#include <string>
#include <vector>

#include "sim/fabric_sim.h"

namespace vscrub {

/// Typed rejection for plans that cannot be compiled or fail validation
/// (hostile/corrupted plans must never reach the execution loop, which
/// trades bounds checks away for speed).
class EvalPlanError : public Error {
 public:
  enum class Kind : u8 {
    kCombinationalCycle,  ///< golden cone is not acyclic
    kIndexOutOfRange,     ///< op reads or writes outside the value arrays
    kDuplicateWriter,     ///< two ops write the same destination
    kTopologyViolation,   ///< op reads a value a later op writes
    kBadOpKind,           ///< unknown op kind or array selector
  };
  EvalPlanError(Kind kind, const std::string& what)
      : Error(what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

const char* eval_plan_error_kind_name(EvalPlanError::Kind kind);

struct EvalPlan {
  /// Value-array selector for operand references and destinations. Indexing
  /// matches the engines' flat arrays: outputs are tile*kClbOutputs+out,
  /// wires tile*kWiresPerClb+wire, overrides share output indexing.
  enum class Arr : u8 {
    kOut = 0,
    kWire = 1,
    kOvr = 2,        ///< harness override words (sources only)
    kHalfLatch = 3,  ///< per-site half-latch values (sources only)
    kConstZero = 4,
    kConstOne = 5,
  };
  enum class OpKind : u8 {
    kLut = 0,   ///< dst = lut_cells[src[3..0] index]
    kCopy = 1,  ///< dst = src[0]
  };
  struct Ref {
    Arr arr = Arr::kConstZero;
    u32 idx = 0;
  };
  struct Op {
    OpKind kind = OpKind::kCopy;
    Arr dst_arr = Arr::kOut;  ///< kOut or kWire
    u32 dst = 0;
    u16 cells = 0;  ///< LUT truth table (kLut only)
    Ref src[kLutInputs];
  };

  /// Topologically ordered: every op's plan-computed operands are written by
  /// earlier ops. Registered outputs, half-latches, overrides and undriven
  /// wires are external inputs.
  std::vector<Op> ops;
  u32 num_outs = 0;
  u32 num_wires = 0;
  u32 num_halflatches = 0;

  /// Full structural check of the invariants the executor relies on; throws
  /// EvalPlanError on the first violation. compile_eval_plan() output always
  /// passes; anything else (mutated, corrupted, hand-built) must be
  /// validated before execution.
  void validate() const;
};

/// Compiles the golden evaluation schedule of `fabric`'s current
/// configuration. `ovr_mask[tile]` gives the effective per-tile override
/// mask (harness drives and external constants) — overridden outputs become
/// copies from the override array instead of LUT evaluations, and a tile
/// with any override stays in the plan even when its decode is inactive,
/// mirroring set_drive()'s force-activation in the scalar engine.
/// Throws EvalPlanError (kCombinationalCycle) when the active cone has a
/// configured combinational loop.
EvalPlan compile_eval_plan(const FabricSim& fabric,
                           const std::vector<u8>& ovr_mask);

/// Scalar reference executor over per-bit value arrays; the oracle the
/// property tests compare engines against. `outs`/`wires` are read-written
/// in place, `ovr` is indexed like `outs`.
void plan_execute(const EvalPlan& plan, const std::vector<u8>& halflatch,
                  const std::vector<u8>& ovr, std::vector<u8>& outs,
                  std::vector<u8>& wires);

}  // namespace vscrub
