// DesignHarness: the testbench glue between a PlacedDesign and a FabricSim —
// the software analogue of the SLAAC-1V X0 support design (input stimulus,
// output capture, clock control) from paper §III-A / Fig. 6.
#pragma once

#include <vector>

#include "common/rng.h"
#include "pnr/placed_design.h"
#include "sim/fabric_sim.h"

namespace vscrub {

/// Up to 128 observed output bits per cycle.
struct OutputWord {
  u64 lo = 0;
  u64 hi = 0;
  bool operator==(const OutputWord&) const = default;
};

/// Deterministic pseudo-random stimulus: the same (seed, width) always
/// produces the same per-cycle input vectors, which is what makes golden
/// traces and DUT runs comparable.
class Stimulus {
 public:
  Stimulus(std::size_t width, u64 seed) : width_(width), seed_(seed), rng_(seed) {}

  void restart() { rng_ = Rng(seed_); }

  /// Fills `bits` (resized to width) with this cycle's input vector. The
  /// resize is conditional: callers reuse one buffer for millions of cycles,
  /// and an unconditional resize() sat on the per-cycle hot path.
  void next(std::vector<u8>& bits) {
    if (bits.size() != width_) bits.resize(width_);
    for (std::size_t i = 0; i < width_; ++i) {
      bits[i] = static_cast<u8>(rng_.next() & 1);
    }
  }

 private:
  std::size_t width_;
  u64 seed_;
  Rng rng_;
};

class DesignHarness {
 public:
  DesignHarness(const PlacedDesign& design, FabricSim& sim, u64 stim_seed = 7);

  /// Full configuration (startup sequence included) from the golden
  /// bitstream, then restart().
  void configure();
  /// Design reset (paper's "reset the system"): logic reset + stimulus
  /// restart. No reconfiguration.
  void restart();
  /// One clock cycle: apply stimulus, settle, capture outputs, clock.
  void step();
  void run(std::size_t cycles);

  const OutputWord& last_outputs() const { return last_outputs_; }
  u64 cycle() const { return cycle_; }
  FabricSim& sim() { return *sim_; }
  const PlacedDesign& design() const { return *design_; }

  /// Reference output trace from the netlist simulator, same stimulus and
  /// cycle alignment (the "golden design" of Fig. 6).
  static std::vector<OutputWord> reference_trace(const Netlist& nl,
                                                 std::size_t cycles,
                                                 u64 stim_seed = 7);

 private:
  void apply_cycle_inputs();
  void capture_outputs();

  const PlacedDesign* design_;
  FabricSim* sim_;
  Stimulus stimulus_;
  std::vector<u8> input_bits_;
  OutputWord last_outputs_;
  u64 cycle_ = 0;
};

}  // namespace vscrub
