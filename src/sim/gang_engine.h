// Internal seam between the GangSim facade and the per-ISA engine
// translation units. Each TU compiles the same engine template
// (gang_engine.inc over wide_word.inc) inside its own namespace — distinct
// symbols, no ODR merging across ISA tiers — and exports plain factory
// functions the facade dispatches on after runtime feature detection.
#pragma once

#include <memory>

#include "sim/eval_plan.h"
#include "sim/gang_isa_support.h"
#include "sim/gang_sim.h"

namespace vscrub {

struct GangEngineConfig {
  bool use_plan = true;
};

class GangEngineBase {
 public:
  virtual ~GangEngineBase() = default;
  virtual int lanes() const = 0;
  virtual int max_variants() const = 0;
  virtual bool plan_active() const = 0;
  virtual const std::string& plan_note() const = 0;
  virtual void run(const BitAddress* addrs, std::size_t count,
                   const GangSim::RunParams& p, GangSim::LaneResult* results,
                   GangSim::RunStats* stats) = 0;
};

// One factory per (tier, width). The scalar tier carries every width — it is
// the portable fallback the wide words reduce to limb-by-limb; the AVX tiers
// carry only the widths their vectors accelerate.
namespace gang_scalar {
std::unique_ptr<GangEngineBase> make_engine_64(const PlacedDesign& design,
                                               const GangEngineConfig& config);
std::unique_ptr<GangEngineBase> make_engine_256(const PlacedDesign& design,
                                                const GangEngineConfig& config);
std::unique_ptr<GangEngineBase> make_engine_512(const PlacedDesign& design,
                                                const GangEngineConfig& config);
}  // namespace gang_scalar

#if VSCRUB_HAVE_ISA_AVX2
namespace gang_avx2 {
std::unique_ptr<GangEngineBase> make_engine_256(const PlacedDesign& design,
                                                const GangEngineConfig& config);
std::unique_ptr<GangEngineBase> make_engine_512(const PlacedDesign& design,
                                                const GangEngineConfig& config);
}  // namespace gang_avx2
#endif

#if VSCRUB_HAVE_ISA_AVX512
namespace gang_avx512 {
std::unique_ptr<GangEngineBase> make_engine_256(const PlacedDesign& design,
                                                const GangEngineConfig& config);
std::unique_ptr<GangEngineBase> make_engine_512(const PlacedDesign& design,
                                                const GangEngineConfig& config);
}  // namespace gang_avx512
#endif

}  // namespace vscrub
