// Declarative command-line surface for vscrubctl. The command table — every
// subcommand, its positionals and its flags — lives here in the library
// rather than in the tool so the test suite can enforce the CLI contract:
// one flag-naming convention (long flags are lowercase `--kebab-case`), no
// undeclared flags accepted, and `--help` output that lists every declared
// flag of every subcommand.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace vscrub {

struct CliFlag {
  std::string name;        ///< "--gang-width", "--json", "-o", ...
  bool takes_value = false;
  std::string value_name;  ///< "N", "FILE", ... (empty for boolean flags)
  std::string help;
};

struct CliCommand {
  std::string name;        ///< "campaign"
  std::string positional;  ///< "<design>" or "" when none
  std::string help;        ///< one-line description
  std::vector<CliFlag> flags;
};

/// The full vscrubctl command table: the single source of truth for parsing,
/// per-command help, the usage screen, and the CLI tests.
const std::vector<CliCommand>& cli_commands();

/// Lookup by command name; nullptr when unknown.
const CliCommand* cli_find(const std::string& name);

/// Parsed arguments of one invocation.
struct CliArgs {
  std::vector<std::string> positional;
  /// (flag name, value) pairs; boolean flags carry an empty value.
  std::vector<std::pair<std::string, std::string>> options;

  bool flag(const std::string& name) const;
  std::string option(const std::string& name, const std::string& dflt) const;
  u64 option_u64(const std::string& name, u64 dflt) const;
  double option_double(const std::string& name, double dflt) const;
  /// Every value of a repeatable flag, in command-line order (repeated
  /// flags accumulate in `options` — e.g. fleet-serve's --worker).
  std::vector<std::string> option_all(const std::string& name) const;
};

/// Parses everything after the command word against the command's declared
/// flags. Throws Error on an undeclared flag or a value flag with no value.
CliArgs cli_parse(const CliCommand& cmd,
                  const std::vector<std::string>& argv);

/// Help text for one command: usage line plus one line per declared flag.
std::string cli_help(const CliCommand& cmd);

/// The all-commands usage screen.
std::string cli_usage();

}  // namespace vscrub
