#include "core/vscrub.h"

namespace vscrub {

// 4.0.0: session-oriented service API (kWorkbenchApiVersion 4) — epoll
// event-loop transport, weighted fair-share scheduler with campaign
// preemption, ServiceSession/JobHandle, ServiceConfig consolidation.
// 3.0.0: ScrubPolicy strategy redesign (kWorkbenchApiVersion 3) — pluggable
// scrub scheduling, RepairMode enum replaces the repair bool pair, fleet
// policy race + BENCH_policies.json.
// 2.0.0: the deprecated static Workbench::sensitive_set forwarder is gone
// (kWorkbenchApiVersion 2); verdict store + recampaign + report/json added.
const char* version() { return "4.0.0"; }

}  // namespace vscrub
