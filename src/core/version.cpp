#include "core/vscrub.h"

namespace vscrub {

// 2.0.0: the deprecated static Workbench::sensitive_set forwarder is gone
// (kWorkbenchApiVersion 2); verdict store + recampaign + report/json added.
const char* version() { return "2.0.0"; }

}  // namespace vscrub
