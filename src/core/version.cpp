#include "core/vscrub.h"

namespace vscrub {

const char* version() { return "1.0.0"; }

}  // namespace vscrub
