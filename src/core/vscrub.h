// Umbrella header and top-level convenience API.
//
// A downstream user's flow:
//
//   #include "core/vscrub.h"
//   using namespace vscrub;
//
//   Workbench bench(device_xcv100ish());
//   PlacedDesign design = bench.compile(designs::lfsr_cluster(4));
//   CampaignResult camp = bench.campaign(design, {.sample_bits = 50'000});
//   // camp.sensitivity(), camp.persistence_ratio(), ...
//
// The individual module headers remain the richer API; Workbench wires the
// common paths together.
#pragma once

#include "bist/bist.h"
#include "bitstream/codebook.h"
#include "bitstream/image_io.h"
#include "bitstream/selectmap.h"
#include "designs/test_designs.h"
#include "halflatch/raddrc.h"
#include "netlist/builder.h"
#include "netlist/drc.h"
#include "netlist/legalize.h"
#include "netlist/refsim.h"
#include "netlist/tmr.h"
#include "netlist/verilog.h"
#include "pnr/pnr.h"
#include "radiation/beam.h"
#include "radiation/environment.h"
#include "radiation/heavy_ion.h"
#include "scrub/scrubber.h"
#include "seu/campaign.h"
#include "seu/report.h"
#include "sim/harness.h"
#include "system/ground_link.h"
#include "system/payload.h"

namespace vscrub {

/// Library version.
const char* version();

class Workbench {
 public:
  explicit Workbench(DeviceGeometry geom)
      : space_(std::make_shared<const ConfigSpace>(std::move(geom))) {}

  const std::shared_ptr<const ConfigSpace>& space() const { return space_; }
  const DeviceGeometry& geometry() const { return space_->geometry(); }

  /// Compile a netlist onto this workbench's device.
  PlacedDesign compile(Netlist netlist, const PnrOptions& options = {}) const {
    return ::vscrub::compile(
        std::make_shared<const Netlist>(std::move(netlist)), space_, options);
  }

  /// Run an SEU injection campaign.
  CampaignResult campaign(const PlacedDesign& design,
                          const CampaignOptions& options = {}) const {
    return run_campaign(design, options);
  }

  /// The sensitivity map as a linear-bit-index set, the form the beam
  /// validation and mission simulator consume.
  static std::unordered_set<u64> sensitive_set(const PlacedDesign& design,
                                               const CampaignResult& result) {
    std::unordered_set<u64> set;
    set.reserve(result.sensitive_bits.size());
    for (const auto& sb : result.sensitive_bits) {
      set.insert(design.space->linear_of(sb.addr));
    }
    return set;
  }

 private:
  std::shared_ptr<const ConfigSpace> space_;
};

}  // namespace vscrub
