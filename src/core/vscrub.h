// Umbrella header and top-level convenience API.
//
// A downstream user's flow:
//
//   #include "core/vscrub.h"
//   using namespace vscrub;
//
//   Workbench bench(device_xcv100ish());
//   PlacedDesign design = bench.compile(designs::lfsr_cluster(4));
//   CampaignResult camp = bench.campaign(design, {.sample_bits = 50'000});
//   // camp.sensitivity(), camp.persistence_ratio(), ...
//
// The individual module headers remain the richer API; Workbench wires the
// common paths together.
#pragma once

#include "bist/bist.h"
#include "bitstream/codebook.h"
#include "bitstream/image_io.h"
#include "bitstream/selectmap.h"
#include "designs/test_designs.h"
#include "halflatch/raddrc.h"
#include "netlist/builder.h"
#include "netlist/drc.h"
#include "netlist/legalize.h"
#include "netlist/refsim.h"
#include "netlist/tmr.h"
#include "netlist/verilog.h"
#include "pnr/pnr.h"
#include "radiation/beam.h"
#include "radiation/environment.h"
#include "radiation/heavy_ion.h"
#include "scrub/scrubber.h"
#include "seu/campaign.h"
#include "seu/report.h"
#include "sim/harness.h"
#include "system/fleet.h"
#include "system/ground_link.h"
#include "system/payload.h"

namespace vscrub {

/// Library version.
const char* version();

/// Workbench API version. Bumped to 4 with the session-oriented service
/// API: ServiceSession::submit() returns a JobHandle (poll/wait/cancel,
/// streaming events) and ServiceClient is a thin wrapper over it;
/// ServerOptions/ServiceOptions merged into one validated ServiceConfig
/// (svc/config.h) with fair-share scheduling (--sched-weight) and campaign
/// preemption (--preempt) knobs; the served gang-width default follows the
/// widest compiled SIMD tier. Served results stay bit-identical to v3 — the
/// wire protocol, report schemas and campaign semantics are unchanged.
///
/// v3 (ScrubPolicy redesign): pluggable scrub policy objects, the
/// RepairMode enum replacing the repair bool pair, the fleet policy race.
inline constexpr int kWorkbenchApiVersion = 4;

class Workbench {
 public:
  explicit Workbench(DeviceGeometry geom)
      : space_(std::make_shared<const ConfigSpace>(std::move(geom))) {}

  const std::shared_ptr<const ConfigSpace>& space() const { return space_; }
  const DeviceGeometry& geometry() const { return space_->geometry(); }

  /// Compile a netlist onto this workbench's device.
  PlacedDesign compile(Netlist netlist, const PnrOptions& options = {}) const {
    return ::vscrub::compile(
        std::make_shared<const Netlist>(std::move(netlist)), space_, options);
  }

  /// Run an SEU injection campaign. Pass options.with_cache(dir) to answer
  /// injections from (and persist fresh verdicts to) a content-addressed
  /// verdict store — warm-cache results are bit-identical to cold runs.
  CampaignResult campaign(const PlacedDesign& design,
                          const CampaignOptions& options = {}) const {
    return run_campaign(design, options);
  }

  /// Delta re-campaign against the prior run recorded in the verdict store:
  /// diffs the design's frames against the stored manifest, re-injects only
  /// bits whose content-addressed key moved, replays the rest, and reports
  /// the reuse rate and speedup vs the prior run. `options.cache_dir` is
  /// filled from `cache_dir` here.
  RecampaignResult recampaign(const PlacedDesign& design, std::string cache_dir,
                              CampaignOptions options = {}) const {
    options.cache_dir = std::move(cache_dir);
    return run_recampaign(design, options);
  }

  /// Build a scrubber for a compiled design over a live fabric and a golden
  /// flash store (the paper's Fig. 4 detect/repair flow).
  Scrubber scrub(const PlacedDesign& design, FabricSim& sim, FlashStore& flash,
                 const ScrubberOptions& options = {}) const {
    return Scrubber(design, sim, flash, options);
  }

  /// Proton-beam validation session for a compiled design (§III-B).
  BeamSession beam_session(const PlacedDesign& design,
                           const BeamOptions& options = {}) const {
    return BeamSession(design, options);
  }

  /// Orbital mission simulator: boards of identical devices flying `design`
  /// under an orbit environment, judged against the campaign's sensitivity
  /// map (see CampaignResult::sensitive_set).
  Payload mission(const PlacedDesign& design, PayloadOptions options,
                  std::unordered_set<u64> sensitive_bits) const {
    return Payload(design, std::move(options), std::move(sensitive_bits));
  }

  /// Monte-Carlo seed sweep: N independent missions across the thread pool,
  /// aggregated into availability confidence intervals and latency
  /// percentiles. Deterministic for any thread count.
  FleetResult fleet(const PlacedDesign& design,
                    const std::unordered_set<u64>& sensitive_bits,
                    const FleetOptions& options = {}) const {
    return run_fleet(design, sensitive_bits, options);
  }

  /// The scrub-policy laboratory (v3): the same seed sweep raced once per
  /// policy, yielding per-policy availability/MTTR/bandwidth curves.
  PolicyRaceResult policy_race(const PlacedDesign& design,
                               const std::unordered_set<u64>& sensitive_bits,
                               const PolicyRaceOptions& options = {}) const {
    return run_policy_race(design, sensitive_bits, options);
  }

  struct BistReport {
    WireTestResult wire;
    ClbBistResult clb;
    bool pass() const { return wire.pass() && !clb.error_detected; }
  };
  /// On-orbit permanent-fault self-test (§II-B): the wire-walk test plus a
  /// compiled CLB LFSR-cascade pattern, each on a fresh fabric carrying
  /// `faults` (empty = health check of a pristine device).
  BistReport bist(const std::vector<FabricSim::PermanentFault>& faults = {},
                  u64 clb_cycles = 400) const {
    BistReport report;
    {
      FabricSim fabric(space_);
      for (const auto& f : faults) fabric.inject_permanent_fault(f);
      report.wire = run_wire_test(space_, fabric);
    }
    {
      const PlacedDesign pattern = compile(bist_clb_cascade(6, 20));
      FabricSim fabric(space_);
      for (const auto& f : faults) fabric.inject_permanent_fault(f);
      report.clb = run_clb_bist(pattern, fabric, clb_cycles);
    }
    return report;
  }

  /// Half-latch dependency DRC for a compiled design (§III-C).
  RadDrcReport raddrc(const PlacedDesign& design) const {
    return raddrc_analyze(design);
  }

 private:
  std::shared_ptr<const ConfigSpace> space_;
};

}  // namespace vscrub
