#include "core/cli.h"

#include <cstdlib>

#include "common/types.h"
#include "svc/config.h"

namespace vscrub {

namespace {

CliFlag value_flag(const char* name, const char* value_name,
                   const char* help) {
  return CliFlag{name, true, value_name, help};
}

CliFlag bool_flag(const char* name, const char* help) {
  return CliFlag{name, false, "", help};
}

CliFlag device_flag() {
  return value_flag("--device", "D",
                    "device geometry (see `vscrubctl devices`)");
}

std::vector<CliFlag> campaign_flags() {
  return {
      device_flag(),
      value_flag("--sample", "N", "sample N random bits (default 20000)"),
      bool_flag("--exhaustive", "inject every configuration bit"),
      bool_flag("--persistence", "classify persistent vs transient failures"),
      value_flag("--threads", "N", "worker threads (0 = hardware)"),
      value_flag("--chunk", "N", "bits per scheduler chunk (0 = auto)"),
      value_flag("--checkpoint", "FILE", "checkpoint/resume file"),
      bool_flag("--progress", "live progress line on stderr"),
      bool_flag("--no-prune", "disable influence-set pruning"),
      value_flag("--gang-width", "N",
                 "bit-sliced gang lanes: 1..64, 256, 512 (default 64)"),
      bool_flag("--no-gang", "scalar injections only (gang width 1)"),
      value_flag("--gang-isa", "T",
                 "gang SIMD tier: auto|scalar|avx2|avx512 (default auto)"),
      bool_flag("--no-gang-plan",
                "interpret gang settles (skip the compiled eval plan)"),
      value_flag("--cache-dir", "DIR", "content-addressed verdict store"),
      value_flag("--json", "FILE", "write a versioned campaign report"),
  };
}

std::vector<CliCommand> build_commands() {
  std::vector<CliCommand> commands;
  commands.push_back(
      {"compile", "<design>", "place, route and emit a configuration image",
       {
           device_flag(),
           bool_flag("--raddrc", "route LUT-ROM constants (half-latch DRC)"),
           bool_flag("--tmr", "apply triple modular redundancy first"),
           value_flag("-o", "FILE", "write the bitstream image"),
       }});
  commands.push_back({"campaign", "<design>",
                      "run a fault-injection campaign", campaign_flags()});
  {
    CliCommand recampaign{"recampaign", "<design>",
                          "delta re-campaign against a verdict store",
                          campaign_flags()};
    commands.push_back(std::move(recampaign));
  }
  commands.push_back(
      {"beam", "<design>", "virtual beam-test correlation run",
       {
           device_flag(),
           value_flag("--observations", "N", "beam observations (default 1000)"),
       }});
  commands.push_back(
      {"mission", "", "single on-orbit mission simulation",
       {
           device_flag(),
           value_flag("--hours", "H", "mission duration (default 24)"),
           bool_flag("--flare", "solar-flare environment"),
           value_flag("--seed", "S", "mission random seed"),
           bool_flag("--scrub-faults", "enable scrub-datapath fault models"),
           value_flag("--scrub-policy", "NAME",
                      "scrub policy (see `vscrubctl policies`)"),
           value_flag("--trace", "FILE", "write a JSONL event trace"),
           value_flag("--json", "FILE", "write a versioned mission report"),
       }});
  commands.push_back(
      {"fleet", "", "Monte-Carlo fleet of seeded missions",
       {
           device_flag(),
           value_flag("--missions", "N", "missions in the sweep (default 8)"),
           value_flag("--hours", "H", "per-mission duration (default 24)"),
           bool_flag("--flare", "solar-flare environment"),
           value_flag("--seed", "S", "base seed (mission i uses seed+i)"),
           value_flag("--threads", "N", "worker threads (0 = hardware)"),
           bool_flag("--scrub-faults", "enable scrub-datapath fault models"),
           value_flag("--scrub-policy", "NAME",
                      "scrub policy, comma list, or 'all' to race them"),
           value_flag("--json", "FILE", "write a versioned fleet report"),
       }});
  commands.push_back({"bist", "", "built-in self-test of the fabric model",
                      {device_flag()}});
  {
    // The serve surface is declared once, in svc/config.h — the CLI table
    // here is derived from it so a knob cannot exist without its flag.
    CliCommand serve{"serve", "",
                     "run the vscrubd campaign service (VSRP1 socket)", {}};
    for (const ServiceConfigFlag& f : service_config_flags()) {
      serve.flags.push_back(CliFlag{f.name, f.takes_value, f.value_name,
                                    f.help});
    }
    commands.push_back(std::move(serve));
  }
  commands.push_back(
      {"submit", "<op> [design]",
       "submit ping|stats|campaign|recampaign|mission|fleet to a vscrubd",
       {
           value_flag("--socket", "PATH",
                      "unix socket path (default /tmp/vscrubd.sock)"),
           device_flag(),
           value_flag("--sample", "N", "sample N random bits (default 20000)"),
           bool_flag("--exhaustive", "inject every configuration bit"),
           bool_flag("--persistence",
                     "classify persistent vs transient failures"),
           value_flag("--gang-width", "N",
                      "bit-sliced gang lanes: 1..64, 256, 512 (default 64)"),
           bool_flag("--no-gang", "scalar injections only (gang width 1)"),
           value_flag("--gang-isa", "T",
                      "gang SIMD tier: auto|scalar|avx2|avx512 (default auto)"),
           bool_flag("--no-gang-plan",
                     "interpret gang settles (skip the compiled eval plan)"),
           value_flag("--seed", "S", "sample / mission seed"),
           value_flag("--hours", "H", "mission duration (default 24)"),
           value_flag("--missions", "N", "fleet missions (default 8)"),
           bool_flag("--flare", "solar-flare environment"),
           bool_flag("--scrub-faults", "enable scrub-datapath fault models"),
           value_flag("--scrub-policy", "NAME",
                      "scrub policy for mission/fleet (fleet: list or 'all')"),
           value_flag("--tenant", "NAME",
                      "fair-share tenant identity for this submission "
                      "(default: per-connection)"),
           bool_flag("--progress", "stream progress frames to stderr"),
           value_flag("--json", "FILE", "write the returned report JSON"),
       }});
  commands.push_back(
      {"fleet-serve", "",
       "run the campaign-fabric coordinator (VSRP1 socket)",
       {
           value_flag("--socket", "PATH",
                      "coordinator unix socket (default /tmp/vscrub-coord.sock)"),
           value_flag("--worker", "PATH",
                      "register a vscrubd worker socket (repeatable)"),
           value_flag("--cache-dir", "DIR",
                      "verdict hub store — the fleet-wide reuse tier"),
           value_flag("--shards-per-worker", "N",
                      "contiguous bit ranges per worker (default 2)"),
           value_flag("--lease-ms", "MS",
                      "reassign a range after this long without a worker "
                      "frame (default 10000)"),
           value_flag("--checkpoint-every-chunks", "N",
                      "worker checkpoint-shipping cadence (default 2)"),
           value_flag("--max-concurrent", "N",
                      "concurrent sharded campaigns (default 2)"),
           value_flag("--stats-json", "FILE",
                      "write coordinator stats after the drain"),
       }});
  commands.push_back(
      {"fleet-submit", "<design>",
       "submit a sharded campaign to a fleet coordinator",
       {
           value_flag("--socket", "PATH",
                      "coordinator socket (default /tmp/vscrub-coord.sock)"),
           device_flag(),
           value_flag("--sample", "N", "sample N random bits (default 20000)"),
           bool_flag("--exhaustive", "inject every configuration bit"),
           bool_flag("--persistence",
                     "classify persistent vs transient failures"),
           value_flag("--seed", "S", "sample seed"),
           value_flag("--chunk", "N", "bits per scheduler chunk (0 = auto)"),
           value_flag("--gang-width", "N",
                      "bit-sliced gang lanes: 1..64, 256, 512 (default 64)"),
           bool_flag("--no-gang", "scalar injections only (gang width 1)"),
           value_flag("--gang-isa", "T",
                      "gang SIMD tier: auto|scalar|avx2|avx512 (default auto)"),
           bool_flag("--no-gang-plan",
                     "interpret gang settles (skip the compiled eval plan)"),
           bool_flag("--no-prune", "disable influence-set pruning"),
           bool_flag("--progress", "stream merged fabric progress to stderr"),
           value_flag("--json", "FILE", "write the merged campaign report"),
       }});
  commands.push_back(
      {"info", "<image.vsb>", "describe a saved configuration image", {}});
  commands.push_back({"designs", "", "list built-in design generators", {}});
  commands.push_back({"devices", "", "list device geometries", {}});
  commands.push_back({"policies", "", "list scrub policies", {}});
  commands.push_back({"version", "",
                      "print workbench API, library and report-schema "
                      "versions", {}});
  return commands;
}

}  // namespace

const std::vector<CliCommand>& cli_commands() {
  static const std::vector<CliCommand> commands = build_commands();
  return commands;
}

const CliCommand* cli_find(const std::string& name) {
  for (const CliCommand& cmd : cli_commands()) {
    if (cmd.name == name) return &cmd;
  }
  return nullptr;
}

bool CliArgs::flag(const std::string& name) const {
  for (const auto& [k, v] : options) {
    if (k == name) return true;
  }
  return false;
}

std::string CliArgs::option(const std::string& name,
                            const std::string& dflt) const {
  for (const auto& [k, v] : options) {
    if (k == name) return v;
  }
  return dflt;
}

u64 CliArgs::option_u64(const std::string& name, u64 dflt) const {
  for (const auto& [k, v] : options) {
    if (k == name) return std::strtoull(v.c_str(), nullptr, 10);
  }
  return dflt;
}

double CliArgs::option_double(const std::string& name, double dflt) const {
  for (const auto& [k, v] : options) {
    if (k == name) return std::atof(v.c_str());
  }
  return dflt;
}

std::vector<std::string> CliArgs::option_all(const std::string& name) const {
  std::vector<std::string> values;
  for (const auto& [k, v] : options) {
    if (k == name) values.push_back(v);
  }
  return values;
}

CliArgs cli_parse(const CliCommand& cmd,
                  const std::vector<std::string>& argv) {
  CliArgs args;
  for (std::size_t i = 0; i < argv.size(); ++i) {
    const std::string& word = argv[i];
    if (word.empty() || word[0] != '-') {
      args.positional.push_back(word);
      continue;
    }
    const CliFlag* flag = nullptr;
    for (const CliFlag& f : cmd.flags) {
      if (f.name == word) {
        flag = &f;
        break;
      }
    }
    if (flag == nullptr) {
      throw Error("unknown flag '" + word + "' for `vscrubctl " + cmd.name +
                  "` (try --help)");
    }
    std::string value;
    if (flag->takes_value) {
      if (i + 1 >= argv.size()) {
        throw Error("flag '" + word + "' needs a " + flag->value_name +
                    " value");
      }
      value = argv[++i];
    }
    args.options.emplace_back(word, std::move(value));
  }
  return args;
}

std::string cli_help(const CliCommand& cmd) {
  std::string out = "usage: vscrubctl " + cmd.name;
  if (!cmd.positional.empty()) out += " " + cmd.positional;
  if (!cmd.flags.empty()) out += " [flags]";
  out += "\n  " + cmd.help + "\n";
  if (!cmd.flags.empty()) out += "flags:\n";
  for (const CliFlag& f : cmd.flags) {
    std::string lhs = "  " + f.name;
    if (f.takes_value) lhs += " " + f.value_name;
    while (lhs.size() < 22) lhs += ' ';
    out += lhs + f.help + "\n";
  }
  return out;
}

std::string cli_usage() {
  std::string out = "usage: vscrubctl <command> [flags]\n"
                    "commands (see `vscrubctl <command> --help`):\n";
  for (const CliCommand& cmd : cli_commands()) {
    std::string lhs = "  " + cmd.name;
    if (!cmd.positional.empty()) lhs += " " + cmd.positional;
    while (lhs.size() < 22) lhs += ' ';
    out += lhs + cmd.help + "\n";
  }
  return out;
}

}  // namespace vscrub
