// Quickstart: compile a design onto the fabric, let it run, inject a single
// SEU through the configuration port, watch the scrubber detect and repair
// it while the design keeps running — the paper's Fig. 4 loop end to end —
// then sanity-check the part with the Workbench's BIST and half-latch DRC.
//
//   ./quickstart
#include <cstdio>

#include "core/vscrub.h"

using namespace vscrub;

int main() {
  std::printf("vscrub %s — quickstart\n\n", version());

  // 1. A device and a design: a 12-bit counter/adder on a small part.
  Workbench bench(device_tiny(8, 12));
  const PlacedDesign design = bench.compile(designs::counter_adder(12));
  std::printf("compiled %s: %zu slices (%.1f%% of device), %zu routed wires\n",
              design.netlist->name().c_str(), design.stats.slices_used,
              design.stats.utilization * 100.0, design.stats.wires_used);

  // 2. Half-latch DRC (§III-C): how exposed is this placement to hidden
  //    state?
  const RadDrcReport drc = bench.raddrc(design);
  std::printf("half-latch uses: %zu critical, %zu non-critical\n",
              drc.critical_uses, drc.noncritical_uses);

  // 3. Configure a fabric and run the design against its golden trace.
  FabricSim fabric(design.space);
  DesignHarness harness(design, fabric);
  harness.configure();
  const auto golden = DesignHarness::reference_trace(*design.netlist, 400);
  harness.run(100);
  std::printf("ran 100 cycles; outputs match golden: %s\n",
              harness.last_outputs() == golden[99] ? "yes" : "NO");

  // 4. On-orbit machinery: ECC flash with the golden image, CRC codebook,
  //    scrubbing fault manager — all wired by the workbench.
  FlashStore flash(design.bitstream);
  Scrubber scrubber = bench.scrub(design, fabric, flash);
  std::printf("scrub pass over %u frames costs %.2f ms (modeled)\n",
              design.space->frame_count(), scrubber.clean_pass_cost().ms());

  // 5. Inject an artificial SEU (paper §II-A) into a random config bit.
  Rng rng(2026);
  const BitAddress hit =
      design.space->address_of_linear(rng.uniform(design.space->total_bits()));
  scrubber.insert_artificial_seu(hit);
  std::printf("\ninjected SEU at column %u frame %u offset %u\n",
              hit.frame.col, hit.frame.frame, hit.offset);

  // 6. Scrub: detect by CRC-vs-codebook, repair by partial reconfiguration.
  const ScrubPassResult pass = scrubber.scrub_pass(&harness);
  std::printf("scrub pass: %u error(s) found, %u repaired, %u reset(s), "
              "%.2f ms\n",
              pass.errors_found, pass.repairs, pass.resets,
              pass.pass_time.ms());

  // 7. The design is healthy again.
  harness.restart();
  bool ok = true;
  for (int t = 0; t < 200; ++t) {
    harness.step();
    ok = ok && harness.last_outputs() == golden[static_cast<std::size_t>(t)];
  }
  std::printf("post-repair run matches golden trace: %s\n", ok ? "yes" : "NO");

  // 8. Permanent-fault self-test (§II-B) of the pristine part.
  const Workbench::BistReport bist = bench.bist();
  std::printf("BIST: wire %s, CLB %s (%.0f%% slice coverage)\n",
              bist.wire.pass() ? "PASS" : "FAIL",
              bist.clb.error_detected ? "ERROR" : "PASS",
              bist.clb.slice_coverage * 100.0);
  return ok && pass.errors_found == 1 && bist.pass() ? 0 : 1;
}
