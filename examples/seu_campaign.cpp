// SEU sensitivity campaign on a user design — what the paper's SLAAC-1V
// simulator does for "any given user design" (§III-A).
//
//   ./seu_campaign [design] [sample_bits] [csv_out]
//     design: lfsr | mult | vmult | counter | multadd | lfsrmult | fir
//
// Prints the design's configuration sensitivity, persistence ratio, and a
// breakdown of the sensitive cross-section by configuration-field kind.
// With a third argument, writes the per-bit correlation table (§III-A) as
// CSV to that path.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/vscrub.h"

using namespace vscrub;

namespace {

Netlist pick_design(const char* name) {
  if (!std::strcmp(name, "lfsr")) return designs::lfsr_cluster(2);
  if (!std::strcmp(name, "mult")) return designs::mult_tree(12);
  if (!std::strcmp(name, "vmult")) return designs::vmult(16);
  if (!std::strcmp(name, "counter")) return designs::counter_adder(16);
  if (!std::strcmp(name, "multadd")) return designs::multiply_add(10);
  if (!std::strcmp(name, "lfsrmult")) return designs::lfsr_multiplier(10);
  if (!std::strcmp(name, "fir")) return designs::fir_preproc(4);
  std::fprintf(stderr, "unknown design %s\n", name);
  std::exit(2);
}

const char* field_name(u8 kind) {
  switch (static_cast<FieldKind>(kind)) {
    case FieldKind::kLutTruth: return "LUT truth";
    case FieldKind::kLutMode: return "LUT mode";
    case FieldKind::kFfInit: return "FF init";
    case FieldKind::kFfUsed: return "FF used";
    case FieldKind::kFfDSrc: return "FF D-src";
    case FieldKind::kSliceClkEn: return "slice clk";
    case FieldKind::kImux: return "IMUX (routing)";
    case FieldKind::kOmux: return "OMUX (routing)";
    case FieldKind::kPad: return "padding";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const char* name = argc > 1 ? argv[1] : "counter";
  const u64 sample = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20000;

  Workbench bench(device_tiny(12, 16));
  const PlacedDesign design = bench.compile(pick_design(name));
  std::printf("design %-18s  %5zu slices  (%.1f%% utilization)\n",
              design.netlist->name().c_str(), design.stats.slices_used,
              design.stats.utilization * 100.0);
  std::printf("device %-18s  %llu configuration bits\n\n",
              design.space->geometry().name.c_str(),
              static_cast<unsigned long long>(design.space->total_bits()));

  CampaignOptions options;
  options.sample_bits = sample;
  options.injection.classify_persistence = true;
  const CampaignResult result = bench.campaign(design, options);

  std::printf("injections               %llu\n",
              static_cast<unsigned long long>(result.injections));
  std::printf("design failures          %llu\n",
              static_cast<unsigned long long>(result.failures));
  std::printf("sensitivity              %.3f%%\n", result.sensitivity() * 100);
  std::printf("normalized sensitivity   %.2f%%\n",
              result.normalized_sensitivity() * 100);
  std::printf("persistence ratio        %.1f%%\n",
              result.persistence_ratio() * 100);
  std::printf("est. sensitive bits      %.0f (whole device)\n",
              result.estimated_failures_device());
  std::printf("modeled SLAAC-1V time    %.1f s   (wall: %.1f s)\n\n",
              result.modeled_hardware_time.sec(), result.wall_seconds);

  std::printf("sensitive cross-section by field:\n");
  for (const auto& [kind, count] : result.failures_by_field) {
    std::printf("  %-16s %6llu  (%.1f%%)\n", field_name(kind),
                static_cast<unsigned long long>(count),
                100.0 * static_cast<double>(count) /
                    static_cast<double>(result.failures));
  }

  if (argc > 3) {
    write_text_file(correlation_table_csv(*design.space, result), argv[3]);
    std::printf("\nwrote correlation table (%zu rows) to %s\n",
                result.sensitive_bits.size(), argv[3]);
  }
  return 0;
}
