// On-orbit permanent-fault diagnosis (paper §II-B): run the wire-walk test,
// the CLB LFSR-cascade BIST, and the BRAM address-in-data checker against a
// fabric with injected permanent faults, and print the isolation report a
// ground station would receive.
//
//   ./bist_diagnosis [seed]
#include <cstdio>
#include <cstdlib>

#include "core/vscrub.h"

using namespace vscrub;

int main(int argc, char** argv) {
  const u64 seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  Rng rng(seed);
  auto space = std::make_shared<const ConfigSpace>(device_tiny(8, 8, 2));
  const DeviceGeometry& geom = space->geometry();

  // The part developed permanent faults on orbit: two stuck wires.
  FabricSim fabric(space);
  std::vector<FabricSim::PermanentFault> faults(2);
  for (auto& f : faults) {
    f.kind = rng.bernoulli(0.5) ? FabricSim::StuckKind::kWireStuck1
                                : FabricSim::StuckKind::kWireStuck0;
    f.tile = TileCoord{static_cast<u16>(rng.uniform(geom.rows)),
                       static_cast<u16>(rng.uniform(geom.cols))};
    f.dir = static_cast<Dir>(rng.uniform(kDirs));
    f.windex = static_cast<u8>(rng.uniform(kOmuxWiresPerDir));
    fabric.inject_permanent_fault(f);
    std::printf("injected %s wire fault at (%u,%u) dir %d wire %u\n",
                f.kind == FabricSim::StuckKind::kWireStuck1 ? "stuck-1"
                                                            : "stuck-0",
                f.tile.row, f.tile.col, static_cast<int>(f.dir), f.windex);
  }

  // ---- Wire-walk test (Fig. 5) -------------------------------------------------
  std::printf("\n== wire test: 20 partial reconfigurations, 40 readbacks ==\n");
  const WireTestResult wire = run_wire_test(space, fabric);
  std::printf("reconfigs=%d readbacks=%d modeled time=%.1f ms\n",
              wire.partial_reconfigs + 1, wire.readbacks,
              wire.modeled_time.ms());
  if (wire.pass()) {
    std::printf("no wire faults detected\n");
  } else {
    std::printf("findings (receiving CLB, wire index, chain direction):\n");
    int shown = 0;
    for (const auto& f : wire.findings) {
      if (shown++ >= 6) break;
      std::printf("  CLB (%u,%u) wire %u dir %d — stuck-at-%d\n", f.tile.row,
                  f.tile.col, f.windex, f.site, f.stuck_at_one ? 1 : 0);
    }
    if (wire.findings.size() > 6) {
      std::printf("  ... %zu findings total (fault echoes down the chain)\n",
                  wire.findings.size());
    }
  }

  // ---- CLB BIST ------------------------------------------------------------------
  std::printf("\n== CLB BIST: LFSR cascades with comparison latches ==\n");
  const auto pattern = compile(
      std::make_shared<const Netlist>(bist_clb_cascade(6, 20)), space, {});
  fabric.full_configure(pattern.bitstream);
  // Walk the pattern's routed nets until one carries a detectable fault.
  // (Faults on the *shared stimulus* net hit every cascade identically, so
  // the pairwise comparison stays silent — a known limit of comparison
  // BIST; the cascades themselves are covered.)
  ClbBistResult clb;
  for (const RoutedNet& net : pattern.routed_nets) {
    if (net.wires.empty()) continue;
    fabric.full_configure(pattern.bitstream);
    fabric.clear_permanent_faults();
    const RoutedWire& rw = net.wires.front();
    FabricSim::PermanentFault hit;
    hit.kind = FabricSim::StuckKind::kWireStuck1;
    hit.tile = rw.tile;
    hit.dir = rw.dir;
    hit.windex = rw.windex;
    fabric.inject_permanent_fault(hit);
    clb = run_clb_bist(pattern, fabric, 500);
    if (clb.error_detected) {
      std::printf("stuck-1 fault on a cascade net at (%u,%u): ", rw.tile.row,
                  rw.tile.col);
      break;
    }
  }
  std::printf("coverage %.0f%% of slices; error %s%s\n",
              clb.slice_coverage * 100,
              clb.error_detected ? "DETECTED" : "not detected",
              clb.error_detected
                  ? (" after " + std::to_string(clb.cycles_to_detect) +
                     " cycles").c_str()
                  : "");

  // ---- BRAM BIST ------------------------------------------------------------------
  std::printf("\n== BRAM BIST: address-in-data checker ==\n");
  fabric.clear_permanent_faults();
  const auto checker = compile(
      std::make_shared<const Netlist>(designs::bram_selftest(2)), space, {});
  fabric.full_configure(checker.bitstream);
  // Simulate a hard-failed BRAM cell.
  fabric.flip_config_bit(BitAddress{FrameAddress{ColumnKind::kBram, 0, 10},
                                    static_cast<u32>(checker.brams[0].block) * 64 + 5});
  const BramBistResult bram = run_bram_bist(checker, fabric, 400);
  std::printf("BRAM error %s%s\n", bram.error_detected ? "DETECTED" : "not detected",
              bram.error_detected
                  ? (" after " + std::to_string(bram.cycles_to_detect) +
                     " cycles").c_str()
                  : "");
  return 0;
}
