// RadDRC: half-latch analysis and removal (paper §III-C). Compiles a design
// twice — once letting the CAD flow lean on half-latches for constants (the
// Xilinx default) and once with RadDRC's LUT-ROM constant substitution —
// and compares their vulnerability to half-latch upsets.
//
//   ./raddrc_tool [trials]
#include <cstdio>
#include <cstdlib>

#include "core/vscrub.h"

using namespace vscrub;

namespace {

void report(const char* label, const PlacedDesign& design) {
  const RadDrcReport r = raddrc_analyze(design);
  std::printf("%-22s critical half-latch uses: %4zu   non-critical: %4zu\n",
              label, r.critical_uses, r.noncritical_uses);
}

}  // namespace

int main(int argc, char** argv) {
  const u64 trials = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1500;
  Workbench bench(device_tiny(12, 16));

  std::printf("vscrub RadDRC — half-latch audit and mitigation\n\n");

  PnrOptions plain;  // Xilinx-CAD-like: constants from half-latches
  const PlacedDesign unmitigated =
      bench.compile(designs::lfsr_cluster(2), plain);
  report("unmitigated", unmitigated);

  PnrOptions raddrc;
  raddrc.halflatch_policy = HalfLatchPolicy::kLutRomConstants;
  const PlacedDesign mitigated =
      bench.compile(designs::lfsr_cluster(2), raddrc);
  report("RadDRC (LUT-ROM)", mitigated);

  std::printf("\nupset trials (%llu random half-latch strikes each):\n",
              static_cast<unsigned long long>(trials));
  const auto base = halflatch_upset_trial(unmitigated, trials);
  const auto fixed = halflatch_upset_trial(mitigated, trials);
  std::printf("  unmitigated failures: %llu / %llu  (%.2f%%)\n",
              static_cast<unsigned long long>(base.output_failures),
              static_cast<unsigned long long>(base.trials),
              base.failure_rate() * 100);
  std::printf("  mitigated failures:   %llu / %llu  (%.2f%%)\n",
              static_cast<unsigned long long>(fixed.output_failures),
              static_cast<unsigned long long>(fixed.trials),
              fixed.failure_rate() * 100);
  if (fixed.output_failures == 0) {
    std::printf("  resistance improvement: > %.0fx (no mitigated failures "
                "observed)\n",
                static_cast<double>(base.output_failures));
  } else {
    std::printf("  resistance improvement: %.0fx\n",
                base.failure_rate() / fixed.failure_rate());
  }
  std::printf("\n(paper §III-C: \"Mitigated designs were found to be 100X "
              "[more] resistant to failure than unmitigated designs\")\n");
  return 0;
}
