// Orbital mission simulation of the nine-FPGA reconfigurable radio
// (paper §II): Poisson upsets from the orbit environment, per-board scrub
// rotation, ECC flash, and the state-of-health accounting the payload
// downlinks to the ground station.
//
//   ./orbital_mission [hours] [quiet|flare]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/vscrub.h"

using namespace vscrub;

int main(int argc, char** argv) {
  const double hours = argc > 1 ? std::atof(argv[1]) : 24.0;
  const bool flare = argc > 2 && !std::strcmp(argv[2], "flare");

  Workbench bench(device_tiny(12, 16));
  const PlacedDesign design = bench.compile(designs::lfsr_multiplier(10));

  // Sensitivity map from a sampled campaign (drives the availability
  // accounting: an upset only corrupts function if it hits a sensitive bit).
  CampaignOptions copts;
  copts.sample_bits = 12000;
  const CampaignResult campaign = bench.campaign(design, copts);
  const auto sensitive = campaign.sensitive_set(design);
  std::printf("design %s: sensitivity %.2f%% (sampled)\n",
              design.netlist->name().c_str(), campaign.sensitivity() * 100);

  PayloadOptions options;
  options.environment = flare ? OrbitEnvironment::leo_solar_flare()
                              : OrbitEnvironment::leo_quiet();
  // The paper's rates are per XCV1000 (5.8M bits); this demo runs a small
  // device, so scale the per-bit rate up to keep the same *system* rate.
  options.environment.upset_rate_per_bit_s *=
      static_cast<double>(kXcv1000PaperBits) /
      static_cast<double>(design.space->total_bits());

  Payload payload(design, options, sensitive);
  std::printf("mission: %.0f h, %s environment, 3 boards x 3 FPGAs\n\n",
              hours, options.environment.name.c_str());
  const MissionReport report = payload.run_mission(SimTime::hours(hours));

  std::printf("── state of health ─────────────────────────────────\n");
  std::printf("upsets                  %llu  (%.2f/h observed, %.2f/h predicted)\n",
              static_cast<unsigned long long>(report.upsets_total),
              report.observed_upsets_per_hour, report.predicted_upsets_per_hour);
  std::printf("  hidden-state hits     %llu\n",
              static_cast<unsigned long long>(report.hidden_upsets));
  std::printf("detected by scrubbing   %llu\n",
              static_cast<unsigned long long>(report.detected));
  std::printf("frames repaired         %llu\n",
              static_cast<unsigned long long>(report.repaired));
  std::printf("resets issued           %llu\n",
              static_cast<unsigned long long>(report.resets));
  std::printf("full reconfigurations   %llu\n",
              static_cast<unsigned long long>(report.full_reconfigs));
  std::printf("scrub cycle per board   %.1f ms\n",
              report.scrub_cycle_per_board.ms());
  std::printf("detection latency       mean %.1f ms, max %.1f ms\n",
              report.mean_detection_latency_ms, report.max_detection_latency_ms);
  std::printf("availability            %.5f\n", report.availability);
  std::printf("flash ECC               %llu reads, %llu corrected, %llu fatal\n",
              static_cast<unsigned long long>(report.flash_stats.reads),
              static_cast<unsigned long long>(report.flash_stats.corrected),
              static_cast<unsigned long long>(report.flash_stats.uncorrectable));

  std::printf("\nper-device upsets/detected/repaired:\n  ");
  for (std::size_t d = 0; d < report.per_device.size(); ++d) {
    const auto& dev = report.per_device[d];
    std::printf("[%zu] %llu/%llu/%llu  ", d,
                static_cast<unsigned long long>(dev.upsets),
                static_cast<unsigned long long>(dev.detected),
                static_cast<unsigned long long>(dev.repaired));
    if (d % 3 == 2) std::printf("\n  ");
  }
  std::printf("\n");
  return 0;
}
